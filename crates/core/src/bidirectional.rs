//! Bidirectional reservation support (paper Appendix C).
//!
//! Hummingbird reservations are unidirectional, but because they are not
//! bound to network identities, a source can obtain reservations for the
//! *reverse* path and simply hand the authentication keys to the
//! destination. Both directions are billed to the source; the destination
//! uses the keys like any other Hummingbird sender.

use hummingbird_control::GrantedReservation;
use hummingbird_crypto::{AuthKey, ResInfo};
use hummingbird_wire::IsdAs;

/// A portable bundle of reservation credentials for one direction of a
/// path, suitable for handing to the peer over any confidential channel.
#[derive(Clone, Debug, PartialEq)]
pub struct ReservationBundle {
    /// Per-hop entries in path order.
    pub hops: Vec<BundleEntry>,
}

/// One hop's credentials.
#[derive(Clone, Debug, PartialEq)]
pub struct BundleEntry {
    /// Granting AS.
    pub as_id: IsdAs,
    /// Reservation parameters.
    pub res_info: ResInfo,
    /// Raw authentication key.
    pub key: [u8; 16],
}

impl ReservationBundle {
    /// Packages granted reservations for transfer to the destination.
    pub fn from_grants(grants: &[GrantedReservation]) -> Self {
        ReservationBundle {
            hops: grants
                .iter()
                .map(|g| BundleEntry {
                    as_id: g.as_id,
                    res_info: g.res_info,
                    key: g.key.to_bytes(),
                })
                .collect(),
        }
    }

    /// Reconstitutes usable reservations on the receiving side.
    pub fn into_grants(self) -> Vec<GrantedReservation> {
        self.hops
            .into_iter()
            .map(|e| GrantedReservation {
                as_id: e.as_id,
                res_info: e.res_info,
                key: AuthKey::new(e.key),
            })
            .collect()
    }

    /// Serializes the bundle (e.g. to ship inside the forward channel).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.hops.len() * 48);
        out.extend_from_slice(&(self.hops.len() as u32).to_be_bytes());
        for e in &self.hops {
            out.extend_from_slice(&e.as_id.isd.to_be_bytes());
            out.extend_from_slice(&e.as_id.asn.to_be_bytes());
            out.extend_from_slice(&e.res_info.ingress.to_be_bytes());
            out.extend_from_slice(&e.res_info.egress.to_be_bytes());
            out.extend_from_slice(&e.res_info.res_id.to_be_bytes());
            out.extend_from_slice(&e.res_info.bw_encoded.to_be_bytes());
            out.extend_from_slice(&e.res_info.res_start.to_be_bytes());
            out.extend_from_slice(&e.res_info.duration.to_be_bytes());
            out.extend_from_slice(&e.key);
        }
        out
    }

    /// Parses a serialized bundle.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            if *pos + n > bytes.len() {
                return None;
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Some(s)
        };
        let count = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        if count > 64 {
            return None;
        }
        let mut hops = Vec::with_capacity(count);
        for _ in 0..count {
            let isd = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?);
            let asn = u64::from_be_bytes(take(&mut pos, 8)?.try_into().ok()?);
            let ingress = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?);
            let egress = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?);
            let res_id = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let bw_encoded = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?);
            let res_start = u32::from_be_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let duration = u16::from_be_bytes(take(&mut pos, 2)?.try_into().ok()?);
            let key: [u8; 16] = take(&mut pos, 16)?.try_into().ok()?;
            hops.push(BundleEntry {
                as_id: IsdAs::new(isd, asn),
                res_info: ResInfo { ingress, egress, res_id, bw_encoded, res_start, duration },
                key,
            });
        }
        if pos != bytes.len() {
            return None;
        }
        Some(ReservationBundle { hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u8) -> BundleEntry {
        BundleEntry {
            as_id: IsdAs::new(1, 0x1000 + u64::from(i)),
            res_info: ResInfo {
                ingress: u16::from(i),
                egress: u16::from(i) + 1,
                res_id: 100 + u32::from(i),
                bw_encoded: 200,
                res_start: 1_700_000_000,
                duration: 600,
            },
            key: [i; 16],
        }
    }

    #[test]
    fn roundtrip() {
        let b = ReservationBundle { hops: vec![entry(1), entry(2), entry(3)] };
        assert_eq!(ReservationBundle::decode(&b.encode()), Some(b));
    }

    #[test]
    fn truncation_rejected() {
        let b = ReservationBundle { hops: vec![entry(1)] };
        let bytes = b.encode();
        assert_eq!(ReservationBundle::decode(&bytes[..bytes.len() - 1]), None);
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(ReservationBundle::decode(&extra), None);
    }

    #[test]
    fn absurd_count_rejected() {
        let mut bytes = vec![0xff, 0xff, 0xff, 0xff];
        bytes.extend_from_slice(&[0u8; 100]);
        assert_eq!(ReservationBundle::decode(&bytes), None);
    }

    #[test]
    fn grants_roundtrip() {
        let grants = vec![GrantedReservation {
            as_id: IsdAs::new(2, 9),
            res_info: entry(5).res_info,
            key: AuthKey::new([5u8; 16]),
        }];
        let bundle = ReservationBundle::from_grants(&grants);
        let back = bundle.into_grants();
        assert_eq!(back[0].res_info, grants[0].res_info);
        assert_eq!(back[0].key, grants[0].key);
    }
}
