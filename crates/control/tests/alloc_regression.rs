//! Allocation-count regression test for the hot read-side queries
//! (ISSUE 9 small fix).
//!
//! The ledger's query surface is borrowed: [`Ledger::object`],
//! [`Ledger::objects_owned_by`] and [`Ledger::objects`] hand out
//! `&ObjectEntry` straight from the committed store, and
//! [`Ledger::balance`] / [`Ledger::object_count`] are plain lookups.
//! None of them may allocate — at millions of objects, a clone per
//! probe on the admission path is exactly the kind of cost this PR
//! removes. `ControlPlane::asset` decodes into an owned value (its
//! payload carries a variable-length display string, so a copy is
//! required); its allocation count is pinned to a small constant
//! instead.
//!
//! The whole file is one `#[test]`: the counting allocator is a
//! process-global, and a single test keeps the counts deterministic.
//!
//! [`Ledger::object`]: hummingbird_ledger::Ledger::object
//! [`Ledger::objects_owned_by`]: hummingbird_ledger::Ledger::objects_owned_by
//! [`Ledger::objects`]: hummingbird_ledger::Ledger::objects
//! [`Ledger::balance`]: hummingbird_ledger::Ledger::balance
//! [`Ledger::object_count`]: hummingbird_ledger::Ledger::object_count

use hummingbird_control::pki::TrustAnchors;
use hummingbird_control::types::TAG_ASSET;
use hummingbird_control::{AsService, BandwidthAsset, ControlPlane, Direction};
use hummingbird_crypto::sig::SecretKey;
use hummingbird_ledger::{Address, ObjectId, Owner};
use hummingbird_wire::IsdAs;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's; delegated unchanged.
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same contract as the caller's; delegated unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as the caller's; delegated unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn hot_queries_do_not_allocate() {
    let mut rng = StdRng::seed_from_u64(3);
    let as_id = IsdAs::new(1, 0x1_0001);
    let cert_key = SecretKey::from_seed(b"alloc-as");
    let mut anchors = TrustAnchors::new();
    anchors.install(as_id, cert_key.public());
    let mut cp = ControlPlane::new(anchors);
    let mut service = AsService::new(as_id, cert_key, [7u8; 16], 1 << 12);
    cp.faucet(service.account, 1_000_000);
    service.register(&mut cp, &mut rng).expect("register");

    // A few hundred committed assets so the queries have real work.
    let mut ids: Vec<ObjectId> = Vec::new();
    for i in 0..300u64 {
        let a = BandwidthAsset {
            as_id,
            bandwidth_kbps: 1_000 + i,
            start_time: 0,
            expiry_time: 3600,
            interface: 1,
            direction: Direction::Ingress,
            time_granularity: 60,
            min_bandwidth_kbps: 100,
        };
        ids.push(service.issue_asset(&mut cp, a).expect("issue").value);
    }
    let owner = Owner::Address(service.account);

    // Borrowed point lookups: zero allocations.
    let (n, entry) = allocations_during(|| cp.ledger.object(ids[150]));
    assert!(entry.is_some());
    assert_eq!(n, 0, "Ledger::object must not allocate");

    let (n, balance) = allocations_during(|| cp.ledger.balance(service.account));
    assert!(balance > 0);
    assert_eq!(n, 0, "Ledger::balance must not allocate");

    let (n, count) = allocations_during(|| cp.ledger.object_count());
    assert!(count >= 300);
    assert_eq!(n, 0, "Ledger::object_count must not allocate");

    // Borrowed index-backed iteration over all 300 assets: zero
    // allocations — entries are handed out by reference.
    let (n, (seen, bytes)) = allocations_during(|| {
        let mut seen = 0usize;
        let mut bytes = 0usize;
        for e in cp.ledger.objects_owned_by(owner, TAG_ASSET) {
            seen += 1;
            bytes += e.data.len();
        }
        (seen, bytes)
    });
    assert_eq!(seen, 300);
    assert!(bytes > 0);
    assert_eq!(n, 0, "Ledger::objects_owned_by iteration must not allocate");

    // Whole-store iteration is borrowed too.
    let (n, total) = allocations_during(|| cp.ledger.objects().count());
    assert!(total >= 300);
    assert_eq!(n, 0, "Ledger::objects iteration must not allocate");

    // Decoding into an owned asset must copy the payload, but only the
    // payload: a small constant number of allocations per probe, not
    // O(store) and not a whole-entry clone.
    let (n, asset) = allocations_during(|| cp.asset(ids[10]));
    assert!(asset.is_some());
    assert!(n <= 4, "ControlPlane::asset allocated {n} times for one decode");

    // An address with no objects of the tag: the index lookup itself
    // must not allocate either.
    let stranger = Owner::Address(Address::from_label("stranger"));
    let (n, none) = allocations_during(|| cp.ledger.objects_owned_by(stranger, TAG_ASSET).count());
    assert_eq!(none, 0);
    assert_eq!(n, 0, "empty index lookup must not allocate");
}
