//! Steering-aware ResID allocation tests (ISSUE 9).
//!
//! Admission draws ResIDs from the data-plane [`ShardMap`]'s per-shard
//! ranges, always from the least-loaded shard, so reservation load is
//! balanced across runtime shards *at allocation time*. Two layers of
//! checks:
//!
//! * end-to-end through the market flow, for every shard count in
//!   {1, 2, 4, 8}: each granted ResID must sit inside exactly one of
//!   the shard map's ranges, the per-shard counts the service reports
//!   must agree with a recount from the granted ResIDs, and the load
//!   must stay balanced;
//! * at the allocator layer, a seeded 10^5-reservation run (with churn:
//!   one in eight reservations released early) must keep the max/min
//!   per-shard reservation-count skew at or below 1.1.

use hummingbird_coloring::{Interval, ShardedFirstFit};
use hummingbird_control::pki::TrustAnchors;
use hummingbird_control::{
    AsService, BandwidthAsset, Client, ControlPlane, Direction, PurchaseSpec,
};
use hummingbird_crypto::sig::SecretKey;
use hummingbird_dataplane::runtime::{ShardMap, Steering};
use hummingbird_ledger::Address;
use hummingbird_wire::IsdAs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HOUR: u64 = 3600;

#[test]
fn granted_res_ids_land_in_the_intended_shard() {
    for shards in [1usize, 2, 4, 8] {
        let mut rng = StdRng::seed_from_u64(21 + shards as u64);
        let as_id = IsdAs::new(1, 0x1_0001);
        let cert_key = SecretKey::from_seed(b"steering-as");
        let mut anchors = TrustAnchors::new();
        anchors.install(as_id, cert_key.public());
        let mut cp = ControlPlane::new(anchors);
        let mut service = AsService::new(as_id, cert_key, [7u8; 16], 1 << 12);
        let map = ShardMap::new(shards, 1 << 12, Steering::ByReservation);
        service.align_with_shard_map(&map);
        cp.faucet(service.account, 1_000_000);
        service.register(&mut cp, &mut rng).expect("register");
        let market = cp.create_marketplace(service.account).expect("market").value;
        cp.register_seller(service.account, market).expect("seller");
        let mut client = Client::new(Address::from_label("steered"));
        cp.faucet(client.account, 100_000);

        // Admit 24 overlapping reservations through the full flow.
        let admitted = 24usize;
        for _ in 0..admitted {
            let mut listed = Vec::new();
            for (dir, interface) in [(Direction::Ingress, 1u16), (Direction::Egress, 2u16)] {
                let a = BandwidthAsset {
                    as_id,
                    bandwidth_kbps: 1_000,
                    start_time: 0,
                    expiry_time: HOUR,
                    interface,
                    direction: dir,
                    time_granularity: 60,
                    min_bandwidth_kbps: 100,
                };
                let id = service.issue_asset(&mut cp, a).expect("issue").value;
                listed.push(cp.create_listing(service.account, market, id, 1).expect("list").value);
            }
            let spec = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 1_000 };
            client
                .buy_and_redeem_path(&mut cp, market, &[(listed[0], listed[1], spec)], &mut rng)
                .expect("buy");
        }
        service.process_requests(&mut cp, &mut rng).expect("deliver");
        assert_eq!(client.collect_deliveries(&cp).expect("collect"), admitted);

        // Every granted ResID sits in exactly one ShardMap range; the
        // recount per range matches what the service reports.
        let ranges = map.res_id_ranges();
        let mut recount = vec![0usize; shards];
        for g in client.reservations() {
            let res_id = g.res_info.res_id;
            let hits: Vec<usize> = (0..shards).filter(|&s| ranges[s].contains(&res_id)).collect();
            assert_eq!(
                hits.len(),
                1,
                "{shards} shards: ResID {res_id} must land in exactly one range"
            );
            recount[hits[0]] += 1;
        }
        let loads = service.shard_loads(1);
        assert_eq!(loads, recount, "{shards} shards: service loads disagree with recount");
        assert_eq!(recount.iter().sum::<usize>(), admitted);

        // Least-loaded admission keeps the spread within one reservation.
        let (max, min) = (recount.iter().max().unwrap(), recount.iter().min().unwrap());
        assert!(max - min <= 1, "{shards} shards: least-loaded admission drifted: {recount:?}");
    }
}

#[test]
fn hundred_thousand_reservation_run_keeps_skew_within_1_1() {
    // Drive the allocation layer directly (the same ShardedFirstFit the
    // service admits through) with the ShardMap's ranges: 10^5 seeded
    // reservations with overlapping windows, an eighth of them released
    // early so recycling is part of the workload.
    let shards = 8usize;
    let map = ShardMap::new(shards, 1 << 21, Steering::ByReservation);
    let ranges = map.res_id_ranges();
    let mut alloc = ShardedFirstFit::new(&ranges);
    let mut rng = StdRng::seed_from_u64(42);

    let total = 100_000usize;
    let mut live: Vec<(u32, Interval)> = Vec::new();
    for i in 0..total {
        let start = rng.gen_range(0..48u64) * HOUR;
        let dur = rng.gen_range(1..=12u64) * HOUR;
        let iv = Interval::new(start, start + dur);
        let res_id = alloc.assign(iv).expect("allocation must not exhaust the ResID space");
        // The allocator's own shard attribution must agree with the map.
        let shard = alloc.shard_of(res_id).expect("allocated ResID must map to a shard");
        assert!(
            ranges[shard].contains(&res_id),
            "ResID {res_id} attributed to shard {shard} outside its range"
        );
        if i % 8 == 3 {
            alloc.release(res_id, &iv);
        } else {
            live.push((res_id, iv));
        }
    }
    assert!(alloc.is_valid(), "allocator invariants violated after the run");
    assert_eq!(alloc.active_count(), live.len());

    let per_shard = alloc.active_per_shard();
    let skew = alloc.skew();
    assert!(skew <= 1.1, "10^5-reservation run skew {skew:.4} > 1.1 (per shard: {per_shard:?})");

    // The recount from live reservations agrees with the allocator.
    let mut recount = vec![0usize; shards];
    for (res_id, _) in &live {
        recount[alloc.shard_of(*res_id).unwrap()] += 1;
    }
    assert_eq!(recount, per_shard);
}
