//! Conservation property suite for the control plane (ISSUE 9).
//!
//! Three families of seeded property tests pin the economics the
//! control plane must never violate, no matter how reservations are
//! sliced, traded, renewed, or auctioned:
//!
//! 1. **Bandwidth × time conservation** — arbitrary seeded sequences of
//!    issue / split / fuse / transfer / redeem never mint or destroy
//!    capacity: Σ issued bandwidth×time always equals the capacity
//!    still live in on-chain assets plus what delivery consumed,
//!    recomputed from a full chain scan after every operation.
//! 2. **Coin conservation under auction settlement** — every MIST a
//!    winner is debited shows up at the seller or as refunded change;
//!    escrows drain to zero; the ledger's mint/burn identity holds to
//!    the MIST, with per-account balances predicted analytically from
//!    the transaction receipts (including gas).
//! 3. **Renewal stability** — the O(1) renewal fast path never changes
//!    a reservation's hop set (ingress/egress interfaces), ResID, or
//!    data-plane shard, across consecutive generations.

use hummingbird_control::pki::TrustAnchors;
use hummingbird_control::types::TAG_ASSET;
use hummingbird_control::{
    bid_commitment, AsService, BandwidthAsset, ClearingEngine, Client, ControlPlane, Direction,
    PurchaseSpec,
};
use hummingbird_crypto::sig::SecretKey;
use hummingbird_dataplane::runtime::{ShardMap, Steering};
use hummingbird_ledger::{Address, ObjectId, TxReceipt};
use hummingbird_wire::IsdAs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const HOUR: u64 = 3600;
const GRAN: u64 = 60;
const MIN_BW: u64 = 100;

fn as_id() -> IsdAs {
    IsdAs::new(1, 0x1_0001)
}

/// One registered AS with plenty of gas; no market.
fn world(seed: u64) -> (ControlPlane, AsService, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cert_key = SecretKey::from_seed(&seed.to_be_bytes());
    let mut anchors = TrustAnchors::new();
    anchors.install(as_id(), cert_key.public());
    let mut cp = ControlPlane::new(anchors);
    let mut service = AsService::new(as_id(), cert_key, [7u8; 16], 1 << 20);
    cp.faucet(service.account, 1_000_000);
    service.register(&mut cp, &mut rng).expect("AS registration");
    (cp, service, rng)
}

fn bwt(a: &BandwidthAsset) -> u128 {
    u128::from(a.bandwidth_kbps) * u128::from(a.expiry_time - a.start_time)
}

/// Ground truth: Σ bandwidth×time over every committed asset object,
/// including assets wrapped under in-flight redeem requests.
fn live_bwt(cp: &ControlPlane) -> u128 {
    cp.ledger
        .objects()
        .filter(|e| e.meta.type_tag == TAG_ASSET)
        .map(|e| bwt(&BandwidthAsset::decode(&e.data).expect("asset decode")))
        .sum()
}

#[test]
fn asset_algebra_conserves_bandwidth_time() {
    for seed in [1u64, 2, 3] {
        let (mut cp, mut service, mut rng) = world(seed);
        let traders = [Address::from_label("trader-a"), Address::from_label("trader-b")];
        for t in traders {
            cp.faucet(t, 1_000_000);
        }

        // Pool of (asset id, current owner). Asset payloads are re-read
        // from the chain before every use, so splits/fuses done earlier
        // in the sequence are always visible.
        let mut pool: Vec<(ObjectId, Address)> = Vec::new();
        let mut issued: u128 = 0;
        let mut consumed: u128 = 0;

        for step in 0..200 {
            match rng.gen_range(0..6) {
                // Issue a fresh ingress/egress pair and hand it to a
                // random trader.
                0 => {
                    let owner = traders[rng.gen_range(0..2)];
                    let bw = MIN_BW * rng.gen_range(1..=40);
                    let start = GRAN * rng.gen_range(0..=50);
                    let dur = GRAN * rng.gen_range(2..=120);
                    for (dir, interface) in [(Direction::Ingress, 1u16), (Direction::Egress, 2u16)]
                    {
                        let a = BandwidthAsset {
                            as_id: as_id(),
                            bandwidth_kbps: bw,
                            start_time: start,
                            expiry_time: start + dur,
                            interface,
                            direction: dir,
                            time_granularity: GRAN,
                            min_bandwidth_kbps: MIN_BW,
                        };
                        issued += bwt(&a);
                        let id = service.issue_asset(&mut cp, a).expect("issue").value;
                        cp.transfer_asset(service.account, id, owner).expect("hand over");
                        pool.push((id, owner));
                    }
                }
                // Split a random asset in time at a granule boundary.
                1 if !pool.is_empty() => {
                    let (id, owner) = pool[rng.gen_range(0..pool.len())];
                    let Some(a) = cp.asset(id) else { continue };
                    let granules = (a.expiry_time - a.start_time) / GRAN;
                    if granules < 2 {
                        continue;
                    }
                    let split_at = a.start_time + GRAN * rng.gen_range(1..granules);
                    let (_, tail) = cp.split_time(owner, id, split_at).expect("split_time").value;
                    pool.push((tail, owner));
                }
                // Split a random asset in bandwidth.
                2 if !pool.is_empty() => {
                    let (id, owner) = pool[rng.gen_range(0..pool.len())];
                    let Some(a) = cp.asset(id) else { continue };
                    if a.bandwidth_kbps < 2 * MIN_BW {
                        continue;
                    }
                    let keep = rng.gen_range(MIN_BW..=a.bandwidth_kbps - MIN_BW);
                    let (_, rest) =
                        cp.split_bandwidth(owner, id, keep).expect("split_bandwidth").value;
                    pool.push((rest, owner));
                }
                // Fuse the first compatible pair found (time-adjacent or
                // same-window twins under one owner).
                3 => {
                    let mut fused = None;
                    'outer: for i in 0..pool.len() {
                        for j in 0..pool.len() {
                            if i == j || pool[i].1 != pool[j].1 {
                                continue;
                            }
                            let (Some(a), Some(b)) = (cp.asset(pool[i].0), cp.asset(pool[j].0))
                            else {
                                continue;
                            };
                            let twins = a.as_id == b.as_id
                                && a.interface == b.interface
                                && a.direction == b.direction;
                            if !twins {
                                continue;
                            }
                            if a.bandwidth_kbps == b.bandwidth_kbps && a.expiry_time == b.start_time
                            {
                                cp.fuse_time(pool[i].1, pool[i].0, pool[j].0).expect("fuse_time");
                                fused = Some(j);
                                break 'outer;
                            }
                            if a.start_time == b.start_time && a.expiry_time == b.expiry_time {
                                cp.fuse_bandwidth(pool[i].1, pool[i].0, pool[j].0)
                                    .expect("fuse_bandwidth");
                                fused = Some(j);
                                break 'outer;
                            }
                        }
                    }
                    if let Some(j) = fused {
                        pool.swap_remove(j);
                    }
                }
                // Transfer a random asset to the other trader.
                4 if !pool.is_empty() => {
                    let k = rng.gen_range(0..pool.len());
                    let (id, owner) = pool[k];
                    let to = if owner == traders[0] { traders[1] } else { traders[0] };
                    cp.transfer_asset(owner, id, to).expect("transfer");
                    pool[k].1 = to;
                }
                // Redeem a matching ingress/egress pair and deliver it:
                // the only operation that consumes capacity.
                _ => {
                    let mut found = None;
                    'outer: for i in 0..pool.len() {
                        for j in 0..pool.len() {
                            if i == j || pool[i].1 != pool[j].1 {
                                continue;
                            }
                            let (Some(a), Some(b)) = (cp.asset(pool[i].0), cp.asset(pool[j].0))
                            else {
                                continue;
                            };
                            if a.direction == Direction::Ingress
                                && b.direction == Direction::Egress
                                && a.matches_for_redeem(&b)
                            {
                                found = Some((i, j, bwt(&a) + bwt(&b)));
                                break 'outer;
                            }
                        }
                    }
                    let Some((i, j, pair_bwt)) = found else { continue };
                    let owner = pool[i].1;
                    let eph = SecretKey::generate(&mut rng);
                    cp.redeem(owner, pool[i].0, pool[j].0, eph.public()).expect("redeem");
                    // Wrapped assets still count as live until delivery
                    // destroys them.
                    assert_eq!(
                        issued,
                        live_bwt(&cp) + consumed,
                        "seed {seed} step {step}: redeem wrap leaked capacity"
                    );
                    service.process_requests(&mut cp, &mut rng).expect("deliver");
                    consumed += pair_bwt;
                    for k in [i.max(j), i.min(j)] {
                        pool.swap_remove(k);
                    }
                }
            }
            assert_eq!(
                issued,
                live_bwt(&cp) + consumed,
                "seed {seed} step {step}: bandwidth x time not conserved"
            );
        }
        assert!(issued > 0, "seed {seed}: sequence issued nothing");
        assert!(consumed > 0, "seed {seed}: sequence never redeemed");
    }
}

/// Accumulates a receipt's net gas effect on the sender's balance.
fn gas_delta<T>(rx: &TxReceipt<T>) -> i128 {
    i128::from(rx.gas.storage_rebate)
        - i128::from(rx.gas.computation_cost)
        - i128::from(rx.gas.storage_cost)
}

#[test]
fn auction_settlement_conserves_coin_balances() {
    for seed in [5u64, 6] {
        let (mut cp, mut service, mut rng) = world(seed);
        let seller = service.account;
        let settler = Address::from_label("settler");
        cp.faucet(settler, 10_000);
        let bidders: Vec<Address> =
            (0..4).map(|i| Address::from_label(&format!("bidder-{i}"))).collect();
        for b in &bidders {
            cp.faucet(*b, 50_000);
        }

        // Predicted balances, updated from every receipt below.
        let mut expected: HashMap<Address, i128> = HashMap::new();
        for a in [seller, settler].iter().chain(&bidders) {
            expected.insert(*a, i128::from(cp.ledger.balance(*a)));
        }

        let reserve = 500u64;
        let mut engine = ClearingEngine::new();
        // Per auction: the deposits escrowed (bidder, amount) and the
        // revealed amounts meeting the reserve, for predicting settlement.
        type Escrowed = (Vec<(Address, u64)>, Vec<u64>);
        let mut auctions: Vec<(ObjectId, Escrowed)> = Vec::new();
        for n in 0..6u64 {
            let a = BandwidthAsset {
                as_id: as_id(),
                bandwidth_kbps: 1_000,
                start_time: 0,
                expiry_time: HOUR,
                interface: 1,
                direction: Direction::Ingress,
                time_granularity: GRAN,
                min_bandwidth_kbps: MIN_BW,
            };
            let rx = service.issue_asset(&mut cp, a).expect("issue");
            *expected.get_mut(&seller).unwrap() += gas_delta(&rx);
            let rx = engine
                .create_auction(&mut cp, seller, rx.value, reserve, 1)
                .expect("create auction");
            *expected.get_mut(&seller).unwrap() += gas_delta(&rx);
            let auction_id = rx.value;

            // Bid shapes per auction: ties, losers below reserve,
            // unrevealed commitments, and a no-bid auction.
            let mut revealed: Vec<(ObjectId, Address, u64, [u8; 32])> = Vec::new();
            let mut deposits: Vec<(Address, u64)> = Vec::new();
            let mut winning: Vec<u64> = Vec::new();
            if n != 5 {
                for (bi, bidder) in bidders.iter().enumerate() {
                    let amount = match (n, bi) {
                        (2, 0) | (2, 1) => reserve + 300, // deliberate top tie
                        (3, _) => reserve.saturating_sub(100 + bi as u64), // all lose
                        _ => reserve + rng.gen_range(0..1000),
                    };
                    let mut salt = [0u8; 32];
                    rng.fill(&mut salt);
                    let deposit = amount + rng.gen_range(0..200);
                    let rx = cp
                        .commit_bid(
                            *bidder,
                            auction_id,
                            bid_commitment(amount, &salt, *bidder),
                            deposit,
                        )
                        .expect("commit");
                    *expected.get_mut(bidder).unwrap() += gas_delta(&rx) - i128::from(deposit);
                    deposits.push((*bidder, deposit));
                    // Auction 4 keeps bidder 3's commitment unrevealed.
                    if !(n == 4 && bi == 3) {
                        revealed.push((rx.value, *bidder, amount, salt));
                        if amount >= reserve {
                            winning.push(amount);
                        }
                    }
                }
            }
            let rx = cp.close_bidding(seller, auction_id).expect("close");
            *expected.get_mut(&seller).unwrap() += gas_delta(&rx);
            for (bid_id, bidder, amount, salt) in &revealed {
                let rx =
                    cp.reveal_bid(*bidder, auction_id, *bid_id, *amount, *salt).expect("reveal");
                *expected.get_mut(bidder).unwrap() += gas_delta(&rx);
            }
            auctions.push((auction_id, (deposits, winning)));
        }

        // Settle the whole epoch in one batched clearing transaction and
        // fold the outcome into the predictions: every deposit comes back
        // out of escrow (so the winner is debited exactly the clearing
        // price, which lands at the seller; everyone else is made whole).
        let rx = engine.clear_epoch(&mut cp, settler, 1).expect("clear");
        *expected.get_mut(&settler).unwrap() += gas_delta(&rx);
        assert_eq!(rx.value.len(), auctions.len(), "seed {seed}: not every auction settled");
        // clear_epoch settles in ascending auction-ID order, not the
        // creation order `auctions` is in — match outcomes by ID.
        let by_id: HashMap<ObjectId, &Escrowed> =
            auctions.iter().map(|(id, dw)| (*id, dw)).collect();
        for (auction_id, outcome) in rx.value.iter() {
            let (deposits, winning) = by_id[auction_id];
            for (bidder, deposit) in deposits {
                *expected.get_mut(bidder).unwrap() += i128::from(*deposit);
            }
            let mut ranked = winning.clone();
            ranked.sort_unstable_by(|a, b| b.cmp(a));
            match ranked.first() {
                Some(_) => {
                    let price = ranked.get(1).copied().unwrap_or(reserve);
                    let (winner, _) = outcome.winner.expect("expected a winner");
                    assert_eq!(outcome.price, price, "seed {seed}: wrong clearing price");
                    *expected.get_mut(&seller).unwrap() += i128::from(price);
                    *expected.get_mut(&winner).unwrap() -= i128::from(price);
                }
                None => assert!(outcome.winner.is_none(), "seed {seed}: phantom winner"),
            }
        }

        // Per-account conservation: predicted == on-chain, to the MIST.
        for (addr, want) in &expected {
            assert_eq!(
                i128::from(cp.ledger.balance(*addr)),
                *want,
                "seed {seed}: balance drift at {addr:?}"
            );
        }
        // Global conservation: mint/burn identity and no stranded escrow.
        let minted = cp.ledger.total_minted() as i128;
        let supply = cp.ledger.total_supply() as i128;
        let burned = cp.ledger.gas_burned();
        assert_eq!(minted, supply + burned, "seed {seed}: mint/burn identity broken");
        let known: u128 = [seller, settler]
            .iter()
            .chain(&bidders)
            .map(|a| u128::from(cp.ledger.balance(*a)))
            .sum();
        assert_eq!(known, cp.ledger.total_supply(), "seed {seed}: stranded escrow MIST");
    }
}

#[test]
fn renewals_preserve_hops_res_id_and_shard() {
    let shards = 4usize;
    let slots = 1u32 << 16;
    let (mut cp, mut service, mut rng) = world(9);
    let map = ShardMap::new(shards, slots, Steering::ByReservation);
    service.align_with_shard_map(&map);
    let market = cp.create_marketplace(service.account).expect("market").value;
    cp.register_seller(service.account, market).expect("seller");
    let mut client = Client::new(Address::from_label("renewer"));
    cp.faucet(client.account, 100_000);

    // Admit 40 reservations through the full market flow.
    for _ in 0..40 {
        let mut listed = Vec::new();
        for (dir, interface) in [(Direction::Ingress, 1u16), (Direction::Egress, 2u16)] {
            let a = BandwidthAsset {
                as_id: as_id(),
                bandwidth_kbps: 1_000,
                start_time: 0,
                expiry_time: HOUR,
                interface,
                direction: dir,
                time_granularity: GRAN,
                min_bandwidth_kbps: MIN_BW,
            };
            let id = service.issue_asset(&mut cp, a).expect("issue").value;
            listed.push(cp.create_listing(service.account, market, id, 1).expect("list").value);
        }
        let spec = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 1_000 };
        client
            .buy_and_redeem_path(&mut cp, market, &[(listed[0], listed[1], spec)], &mut rng)
            .expect("buy");
    }
    service.process_requests(&mut cp, &mut rng).expect("deliver");
    assert_eq!(client.collect_deliveries(&cp).expect("collect"), 40);

    let ranges = map.res_id_ranges();
    let shard_of = |res_id: u32| ranges.iter().position(|r| r.contains(&res_id));
    let baseline: Vec<(u32, u16, u16, usize)> = client
        .reservations()
        .iter()
        .map(|g| {
            let s = shard_of(g.res_info.res_id).expect("ResID outside every shard range");
            (g.res_info.res_id, g.res_info.ingress, g.res_info.egress, s)
        })
        .collect();

    // Two consecutive renewal generations; each must reproduce the exact
    // (ResID, ingress, egress, shard) tuple one window later.
    for generation in 0..2u32 {
        let before = client.reservations().len();
        let targets: Vec<(u16, u32, u32)> =
            baseline.iter().map(|&(res_id, ingress, _, _)| (ingress, res_id, generation)).collect();
        client.request_renewals(&mut cp, service.account, &targets, 100).expect("request");
        let report = service.process_renewals(&mut cp, &mut rng).expect("process");
        assert_eq!(report.delivered.len(), 40, "generation {generation}: not all renewed");
        assert_eq!(report.rejected, 0, "generation {generation}: spurious rejections");
        assert_eq!(client.collect_renewals(&cp).expect("collect"), 40);

        for g in client.reservations().iter().skip(before) {
            let res_id = g.res_info.res_id;
            let shard = shard_of(res_id).expect("renewed ResID outside every shard range");
            assert!(
                baseline.contains(&(res_id, g.res_info.ingress, g.res_info.egress, shard)),
                "generation {generation}: renewal changed ResID/hops/shard for ResID {res_id}"
            );
            assert_eq!(
                g.res_info.res_start as u64,
                (u64::from(generation) + 1) * HOUR,
                "generation {generation}: window did not advance"
            );
        }
    }
}
