//! Differential test: epoch-batched clearing ≡ sequential settlement.
//!
//! Two worlds are built through *identical* transaction sequences (the
//! ledger derives object IDs from `(sender, tx_counter)`, so equal
//! sequences produce equal IDs). One settles each epoch with
//! [`ClearingEngine::clear_epoch`] — a single batched transaction — the
//! other runs the original [`ControlPlane::settle_auction`] loop over
//! the same auctions in ascending object-ID order. The two must agree
//! **bit for bit**: same winners, same clearing prices, the same final
//! ledger object set (IDs, versions, owners, payload bytes), and the
//! same balance for every participant. The only permitted divergence is
//! the settler's own balance — one transaction's gas versus N.
//!
//! The workload deliberately includes the awkward cases: amount ties at
//! the top (broken by bid object ID), auctions whose bids all miss the
//! reserve, commitments never revealed, and auctions with no bids at
//! all.

use hummingbird_control::pki::TrustAnchors;
use hummingbird_control::{
    bid_commitment, AsService, AuctionOutcome, BandwidthAsset, ClearingEngine, ControlPlane,
    Direction,
};
use hummingbird_crypto::sig::SecretKey;
use hummingbird_ledger::{Address, ObjectId, Owner};
use hummingbird_wire::IsdAs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HOUR: u64 = 3600;
const RESERVE: u64 = 500;

struct AuctionWorld {
    cp: ControlPlane,
    engine: ClearingEngine,
    /// Auction IDs in ascending object-ID (settlement) order.
    auctions: Vec<ObjectId>,
    /// Auction IDs in creation order, so tests can find the workload's
    /// special cases (`created[n]` is the auction built in round `n`).
    created: Vec<ObjectId>,
    settler: Address,
    participants: Vec<Address>,
}

/// Builds one world with a seeded auction workload: normal spreads, a
/// deliberate top tie, an all-below-reserve auction, an unrevealed
/// commitment, and a zero-bid auction. Fully deterministic per seed.
fn build_world(seed: u64, n_auctions: u64) -> AuctionWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let as_id = IsdAs::new(1, 0x1_0001);
    let cert_key = SecretKey::from_seed(&seed.to_be_bytes());
    let mut anchors = TrustAnchors::new();
    anchors.install(as_id, cert_key.public());
    let mut cp = ControlPlane::new(anchors);
    let mut service = AsService::new(as_id, cert_key, [7u8; 16], 1 << 20);
    cp.faucet(service.account, 1_000_000);
    service.register(&mut cp, &mut rng).expect("register");
    let seller = service.account;
    let settler = Address::from_label("settler");
    cp.faucet(settler, 100_000);
    let bidders: Vec<Address> =
        (0..4).map(|i| Address::from_label(&format!("bidder-{i}"))).collect();
    for b in &bidders {
        cp.faucet(*b, 100_000);
    }

    let mut engine = ClearingEngine::new();
    let mut auctions = Vec::new();
    for n in 0..n_auctions {
        let asset = BandwidthAsset {
            as_id,
            bandwidth_kbps: 1_000,
            start_time: 0,
            expiry_time: HOUR,
            interface: 1,
            direction: Direction::Ingress,
            time_granularity: 60,
            min_bandwidth_kbps: 100,
        };
        let asset_id = service.issue_asset(&mut cp, asset).expect("issue").value;
        let auction_id =
            engine.create_auction(&mut cp, seller, asset_id, RESERVE, 1).expect("create").value;
        let mut reveals = Vec::new();
        if n % 7 != 5 {
            for (bi, bidder) in bidders.iter().enumerate() {
                let amount = match (n % 7, bi) {
                    // Top tie between two bidders, broken by bid object ID;
                    // the remaining bidders stay strictly below the tie.
                    (2, 0) | (2, 1) => RESERVE + 777,
                    (2, _) => RESERVE + rng.gen_range(0..700),
                    // Every bid misses the reserve.
                    (3, _) => RESERVE - 1 - bi as u64,
                    _ => RESERVE + rng.gen_range(0..1000),
                };
                let mut salt = [0u8; 32];
                rng.fill(&mut salt);
                let bid_id = cp
                    .commit_bid(
                        *bidder,
                        auction_id,
                        bid_commitment(amount, &salt, *bidder),
                        amount + 100,
                    )
                    .expect("commit")
                    .value;
                // One commitment per 7-cycle stays unrevealed.
                if !(n % 7 == 4 && bi == 3) {
                    reveals.push((bid_id, *bidder, amount, salt));
                }
            }
        }
        cp.close_bidding(seller, auction_id).expect("close");
        for (bid_id, bidder, amount, salt) in reveals {
            cp.reveal_bid(bidder, auction_id, bid_id, amount, salt).expect("reveal");
        }
        auctions.push(auction_id);
    }
    let created = auctions.clone();
    auctions.sort();
    let mut participants = vec![seller];
    participants.extend(bidders);
    AuctionWorld { cp, engine, auctions, created, settler, participants }
}

/// Canonical snapshot of every committed object: ID, version, owner,
/// type tag, and payload bytes. The settler's own objects are excluded:
/// its gas coin is version-bumped once per transaction it signs, and
/// "one clearing tx versus N settle txs" is precisely the divergence
/// the differential test permits.
fn object_snapshot(
    cp: &ControlPlane,
    settler: Address,
) -> Vec<(ObjectId, u64, Owner, &'static str, Vec<u8>)> {
    let mut snap: Vec<_> = cp
        .ledger
        .objects()
        .filter(|e| e.meta.owner != Owner::Address(settler))
        .map(|e| (e.meta.id, e.meta.version, e.meta.owner, e.meta.type_tag, e.data.clone()))
        .collect();
    snap.sort_by_key(|e| e.0);
    snap
}

#[test]
fn batched_clearing_matches_sequential_settlement() {
    for seed in [11u64, 12, 13] {
        // Both worlds run the *same* transaction sequence up to
        // settlement, so their pre-settlement states are identical.
        let mut batched = build_world(seed, 14);
        let mut sequential = build_world(seed, 14);
        assert_eq!(
            object_snapshot(&batched.cp, batched.settler),
            object_snapshot(&sequential.cp, sequential.settler),
            "seed {seed}: worlds diverged before settlement"
        );

        // World A: one epoch-clearing transaction.
        let a_outcomes: Vec<(ObjectId, AuctionOutcome)> = batched
            .engine
            .clear_epoch(&mut batched.cp, batched.settler, 1)
            .expect("clear epoch")
            .value;

        // World B: the original per-auction loop, ascending auction ID.
        let mut b_outcomes: Vec<(ObjectId, AuctionOutcome)> = Vec::new();
        for &auction_id in &sequential.auctions {
            let bids = sequential.cp.auction_bids(auction_id);
            let outcome = sequential
                .cp
                .settle_auction(sequential.settler, auction_id, &bids)
                .expect("settle")
                .value;
            b_outcomes.push((auction_id, outcome));
        }

        // Bit-identical outcomes: same auctions, winners, prices.
        assert_eq!(a_outcomes, b_outcomes, "seed {seed}: outcomes diverged");
        let decided = a_outcomes.iter().filter(|(_, o)| o.winner.is_some()).count();
        assert!(decided > 0, "seed {seed}: degenerate workload, no winners at all");
        assert!(decided < a_outcomes.len(), "seed {seed}: no zero-winner auctions exercised");

        // Bit-identical ledger object sets (auctions and bids torn down,
        // assets transferred to the same owners at the same versions).
        assert_eq!(
            object_snapshot(&batched.cp, batched.settler),
            object_snapshot(&sequential.cp, sequential.settler),
            "seed {seed}: final object sets diverged"
        );

        // Identical balances for every participant; only the settler's
        // gas may differ (1 transaction vs N).
        for p in &batched.participants {
            assert_eq!(
                batched.cp.ledger.balance(*p),
                sequential.cp.ledger.balance(*p),
                "seed {seed}: balance diverged for {p:?}"
            );
        }
    }
}

#[test]
fn tie_break_is_deterministic_and_by_bid_object_id() {
    // Rebuild the tie scenario directly and check the winner is the bid
    // with the larger object ID, in both settlement paths.
    let mut batched = build_world(99, 3);
    let mut sequential = build_world(99, 3);
    let tied = batched.created[2]; // creation round n = 2, n % 7 == 2 → top tie
    let tied_bids = batched.cp.auction_bids(tied);
    assert_eq!(tied_bids.len(), 4);

    let a = batched.engine.clear_epoch(&mut batched.cp, batched.settler, 1).expect("clear").value;
    let mut b = Vec::new();
    for &auction_id in &sequential.auctions {
        let bids = sequential.cp.auction_bids(auction_id);
        b.push((
            auction_id,
            sequential.cp.settle_auction(sequential.settler, auction_id, &bids).expect("s").value,
        ));
    }
    assert_eq!(a, b);
    let (_, tie_outcome) = a.iter().find(|(id, _)| *id == tied).expect("tied auction settled");
    let (winner, _) = tie_outcome.winner.expect("tie must still produce a winner");
    assert_eq!(tie_outcome.price, RESERVE + 777, "tie clears at the tied amount");
    // Both tied bidders bid the same amount; the winner is whichever bid
    // object ID ranks higher, which is stable across runs of the same
    // seed — assert it is one of the two tied bidders.
    let tied_bidders = [Address::from_label("bidder-0"), Address::from_label("bidder-1")];
    assert!(tied_bidders.contains(&winner), "tie winner must be one of the tied bidders");
}
