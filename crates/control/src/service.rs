//! The AS-side Hummingbird service (paper §3.2, "AS Stack").
//!
//! Each reservation-providing AS runs a service that (i) manages the
//! AS-local secret value `SV` shared with its border routers, (ii) assigns
//! ResIDs using online interval coloring so the policing array stays small
//! (§4.4), and (iii) answers redeem requests by deriving `A_K`, sealing it
//! to the host's ephemeral key and posting the delivery transaction (§6.1,
//! "Market Client Application").

use crate::plane::{ControlPlane, CpResult};
use crate::types::*;
use hummingbird_coloring::{FirstFit, Interval};
use hummingbird_crypto::sealed;
use hummingbird_crypto::sig::{SecretKey, Signature};
use hummingbird_crypto::{ResInfo, SecretValue};
use hummingbird_ledger::codec::{DecodeError, Reader, Writer};
use hummingbird_ledger::{Address, ExecError, ObjectId};
use hummingbird_wire::bwcls;
use hummingbird_wire::IsdAs;
use rand::Rng;
use std::collections::HashMap;

/// The decrypted payload of a reservation delivery: the data-plane
/// parameters plus the authentication key `A_K`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReservationPayload {
    /// The reservation description authenticated on the data plane.
    pub res_info: ResInfo,
    /// The 16-byte reservation authentication key.
    pub key: [u8; 16],
}

impl ReservationPayload {
    /// Serializes the payload for sealing.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(self.res_info.ingress);
        w.u16(self.res_info.egress);
        w.u32(self.res_info.res_id);
        w.u16(self.res_info.bw_encoded);
        w.u32(self.res_info.res_start);
        w.u16(self.res_info.duration);
        w.bytes(&self.key);
        w.finish()
    }

    /// Parses a sealed payload after decryption.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let p = ReservationPayload {
            res_info: ResInfo {
                ingress: r.u16()?,
                egress: r.u16()?,
                res_id: r.u32()?,
                bw_encoded: r.u16()?,
                res_start: r.u32()?,
                duration: r.u16()?,
            },
            key: r.array::<16>()?,
        };
        r.finish()?;
        Ok(p)
    }
}

/// Errors from serving redeem requests.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// All ResIDs for the interface are taken — the AS is at its
    /// monitoring capacity (§3.1: "each AS can individually decide and
    /// limit the number of reservations that it can afford to monitor").
    ResIdsExhausted,
    /// The reservation's duration exceeds the 16-bit wire field.
    DurationTooLong,
    /// The reservation's start time does not fit the 32-bit wire field.
    StartTimeOutOfRange,
    /// Bandwidth does not fit the 10-bit wire encoding.
    BandwidthOutOfRange,
    /// The underlying ledger transaction failed.
    Exec(ExecError),
}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> Self {
        ServiceError::Exec(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ResIdsExhausted => f.write_str("no free ResID for this interface"),
            ServiceError::DurationTooLong => f.write_str("duration exceeds 16-bit field"),
            ServiceError::StartTimeOutOfRange => f.write_str("start time exceeds 32-bit field"),
            ServiceError::BandwidthOutOfRange => f.write_str("bandwidth not encodable"),
            ServiceError::Exec(e) => write!(f, "ledger error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A record of a reservation this AS has granted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IssuedReservation {
    /// Data-plane parameters.
    pub res_info: ResInfo,
    /// Who redeemed it.
    pub granted_to: Address,
}

/// The Hummingbird service of one AS.
pub struct AsService {
    /// The AS this service speaks for.
    pub as_id: IsdAs,
    /// Its on-chain account.
    pub account: Address,
    cert_key: SecretKey,
    sv: SecretValue,
    /// One ResID allocator per ingress interface (§4.1: IDs are unique per
    /// interface pair; per-ingress unique IDs are "preferred" for
    /// monitoring, which is what we implement).
    allocators: HashMap<u16, FirstFit>,
    res_id_cap: u32,
    issued: Vec<IssuedReservation>,
    auth_token: Option<ObjectId>,
}

impl AsService {
    /// Creates a service. `sv_key` is the AS-local data-plane secret;
    /// `cert_key` its PKI key; `res_id_cap` bounds ResIDs per ingress
    /// interface (the policing-array size knob of §4.4).
    pub fn new(as_id: IsdAs, cert_key: SecretKey, sv_key: [u8; 16], res_id_cap: u32) -> Self {
        let account = Address::from_pubkey(&cert_key.public());
        AsService {
            as_id,
            account,
            cert_key,
            sv: SecretValue::new(sv_key),
            allocators: HashMap::new(),
            res_id_cap,
            issued: Vec::new(),
            auth_token: None,
        }
    }

    /// The secret value shared with this AS's border routers.
    pub fn secret_value(&self) -> &SecretValue {
        &self.sv
    }

    /// The PKI public key (to install as a trust anchor).
    pub fn cert_public(&self) -> hummingbird_crypto::sig::PublicKey {
        self.cert_key.public()
    }

    /// The auth token object, once registered.
    pub fn auth_token(&self) -> Option<ObjectId> {
        self.auth_token
    }

    /// Produces the PKI possession proof for registration.
    pub fn registration_proof<R: Rng + ?Sized>(&self, rng: &mut R) -> Signature {
        crate::pki::sign_registration(&self.cert_key, self.as_id, self.account, rng)
    }

    /// Registers this AS with the asset contract.
    pub fn register<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        rng: &mut R,
    ) -> CpResult<ObjectId> {
        let proof = self.registration_proof(rng);
        let receipt = cp.register_as(self.account, self.as_id, &proof)?;
        self.auth_token = Some(receipt.value);
        Ok(receipt)
    }

    /// Issues a bandwidth asset (must be registered first).
    pub fn issue_asset(
        &mut self,
        cp: &mut ControlPlane,
        asset: BandwidthAsset,
    ) -> CpResult<ObjectId> {
        let token = self
            .auth_token
            .ok_or_else(|| ExecError::Contract("AS not registered: no auth token".into()))?;
        cp.issue(self.account, token, asset)
    }

    /// Reservations this AS has granted so far.
    pub fn issued(&self) -> &[IssuedReservation] {
        &self.issued
    }

    /// Highest ResID in use on `ingress` (policing-array sizing).
    pub fn res_id_high_water(&self, ingress: u16) -> Option<u32> {
        self.allocators.get(&ingress).map(|a| a.high_water())
    }

    /// Recycles ResIDs of reservations that have expired by `now`.
    pub fn expire_reservations(&mut self, now: u64) {
        for alloc in self.allocators.values_mut() {
            alloc.release_expired(now);
        }
    }

    /// Serves every pending redeem request addressed to this AS: assigns a
    /// ResID, derives `A_K` (Eq. 2), seals the payload to the requester's
    /// ephemeral key and posts the delivery transaction. Returns the
    /// delivery object IDs.
    pub fn process_requests<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        rng: &mut R,
    ) -> Result<Vec<ObjectId>, ServiceError> {
        let pending = cp.pending_requests(self.account);
        let mut delivered = Vec::with_capacity(pending.len());
        for (request_id, request) in pending {
            let delivery = self.build_delivery(&request, rng)?;
            let receipt = cp.deliver_reservation(self.account, request_id, delivery)?;
            delivered.push(receipt.value);
        }
        Ok(delivered)
    }

    /// Builds the sealed reservation for one redeem request.
    fn build_delivery<R: Rng + ?Sized>(
        &mut self,
        request: &RedeemRequest,
        rng: &mut R,
    ) -> Result<EncryptedReservation, ServiceError> {
        let asset = &request.asset;
        let duration: u16 =
            asset.duration().try_into().map_err(|_| ServiceError::DurationTooLong)?;
        let res_start: u32 =
            asset.start_time.try_into().map_err(|_| ServiceError::StartTimeOutOfRange)?;
        // Grant at most the purchased bandwidth on the wire (round down).
        let bw_encoded =
            bwcls::encode_floor(asset.bandwidth_kbps).ok_or(ServiceError::BandwidthOutOfRange)?;

        let cap = self.res_id_cap;
        let allocator =
            self.allocators.entry(asset.interface).or_insert_with(|| FirstFit::new(cap));
        let res_id = allocator
            .assign(Interval::new(asset.start_time, asset.expiry_time))
            .ok_or(ServiceError::ResIdsExhausted)?;

        let res_info = ResInfo {
            ingress: asset.interface,
            egress: request.egress_interface,
            res_id,
            bw_encoded,
            res_start,
            duration,
        };
        let key = self.sv.derive_key(&res_info);
        let payload = ReservationPayload { res_info, key: key.to_bytes() };
        let sealed = sealed::seal(&request.ephemeral_pk, &payload.encode(), rng);
        self.issued.push(IssuedReservation { res_info, granted_to: request.requester });
        Ok(EncryptedReservation { as_id: self.as_id, sealed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let p = ReservationPayload {
            res_info: ResInfo {
                ingress: 1,
                egress: 2,
                res_id: 77,
                bw_encoded: 200,
                res_start: 1_700_000_000,
                duration: 600,
            },
            key: [9u8; 16],
        };
        assert_eq!(ReservationPayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn payload_rejects_truncation() {
        let p = ReservationPayload {
            res_info: ResInfo {
                ingress: 0,
                egress: 0,
                res_id: 0,
                bw_encoded: 0,
                res_start: 0,
                duration: 0,
            },
            key: [0u8; 16],
        };
        let bytes = p.encode();
        assert!(ReservationPayload::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
