//! The AS-side Hummingbird service (paper §3.2, "AS Stack").
//!
//! Each reservation-providing AS runs a service that (i) manages the
//! AS-local secret value `SV` shared with its border routers, (ii) assigns
//! ResIDs using online interval coloring so the policing array stays small
//! (§4.4), and (iii) answers redeem requests by deriving `A_K`, sealing it
//! to the host's ephemeral key and posting the delivery transaction (§6.1,
//! "Market Client Application").

use crate::plane::{ControlPlane, CpResult};
use crate::renewal::{renewal_wrap_key, RenewalRequest, RenewedReservation, TAG_RENEWED};
use crate::types::*;
use hummingbird_coloring::{Interval, ShardedFirstFit};
use hummingbird_crypto::sealed;
use hummingbird_crypto::sig::{SecretKey, Signature};
use hummingbird_crypto::{ResInfo, SecretValue};
use hummingbird_dataplane::ShardMap;
use hummingbird_ledger::codec::{DecodeError, Reader, Writer};
use hummingbird_ledger::{Address, ExecError, ObjectId, Owner};
use hummingbird_wire::bwcls;
use hummingbird_wire::IsdAs;
use rand::Rng;
use std::collections::HashMap;
use std::ops::Range;

/// The decrypted payload of a reservation delivery: the data-plane
/// parameters plus the authentication key `A_K`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReservationPayload {
    /// The reservation description authenticated on the data plane.
    pub res_info: ResInfo,
    /// The 16-byte reservation authentication key.
    pub key: [u8; 16],
}

impl ReservationPayload {
    /// Serializes the payload for sealing.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(self.res_info.ingress);
        w.u16(self.res_info.egress);
        w.u32(self.res_info.res_id);
        w.u16(self.res_info.bw_encoded);
        w.u32(self.res_info.res_start);
        w.u16(self.res_info.duration);
        w.bytes(&self.key);
        w.finish()
    }

    /// Parses a sealed payload after decryption.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let p = ReservationPayload {
            res_info: ResInfo {
                ingress: r.u16()?,
                egress: r.u16()?,
                res_id: r.u32()?,
                bw_encoded: r.u16()?,
                res_start: r.u32()?,
                duration: r.u16()?,
            },
            key: r.array::<16>()?,
        };
        r.finish()?;
        Ok(p)
    }
}

/// Errors from serving redeem requests.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// All ResIDs for the interface are taken — the AS is at its
    /// monitoring capacity (§3.1: "each AS can individually decide and
    /// limit the number of reservations that it can afford to monitor").
    ResIdsExhausted,
    /// The reservation's duration exceeds the 16-bit wire field.
    DurationTooLong,
    /// The reservation's start time does not fit the 32-bit wire field.
    StartTimeOutOfRange,
    /// Bandwidth does not fit the 10-bit wire encoding.
    BandwidthOutOfRange,
    /// The underlying ledger transaction failed.
    Exec(ExecError),
}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> Self {
        ServiceError::Exec(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ResIdsExhausted => f.write_str("no free ResID for this interface"),
            ServiceError::DurationTooLong => f.write_str("duration exceeds 16-bit field"),
            ServiceError::StartTimeOutOfRange => f.write_str("start time exceeds 32-bit field"),
            ServiceError::BandwidthOutOfRange => f.write_str("bandwidth not encodable"),
            ServiceError::Exec(e) => write!(f, "ledger error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A record of a reservation this AS has granted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IssuedReservation {
    /// Data-plane parameters.
    pub res_info: ResInfo,
    /// Who redeemed it.
    pub granted_to: Address,
}

/// Renewal-table entry: everything needed to re-derive and extend a live
/// reservation without consulting the market or the coloring slow path.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RenewalEntry {
    /// Number of renewals served so far; requests must quote it.
    generation: u32,
    /// The interval held in the allocator (grows with each renewal).
    interval: Interval,
    egress: u16,
    bw_encoded: u16,
    /// Window length in seconds; each renewal appends one more window.
    duration: u16,
    granted_to: Address,
}

/// Outcome of one [`AsService::process_renewals`] batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RenewalReport {
    /// Delivery objects created for accepted renewals.
    pub delivered: Vec<ObjectId>,
    /// Requests rejected (and refunded): unknown reservation, stale
    /// generation, wrong requester, or a coloring conflict.
    pub rejected: usize,
}

/// The Hummingbird service of one AS.
pub struct AsService {
    /// The AS this service speaks for.
    pub as_id: IsdAs,
    /// Its on-chain account.
    pub account: Address,
    cert_key: SecretKey,
    sv: SecretValue,
    /// One ResID allocator per ingress interface (§4.1: IDs are unique per
    /// interface pair; per-ingress unique IDs are "preferred" for
    /// monitoring, which is what we implement). Sharded so freshly issued
    /// ResIDs land in the least-loaded data-plane shard.
    allocators: HashMap<u16, ShardedFirstFit>,
    /// ResID ranges new allocators are built from; defaults to one range
    /// `[0, res_id_cap)` until [`Self::align_with_shard_map`] installs the
    /// dataplane's per-shard partition.
    shard_ranges: Vec<Range<u32>>,
    res_id_cap: u32,
    /// Generation-indexed renewal fast path, keyed `(ingress, res_id)`.
    renewals: HashMap<(u16, u32), RenewalEntry>,
    issued: Vec<IssuedReservation>,
    auth_token: Option<ObjectId>,
}

impl AsService {
    /// Creates a service. `sv_key` is the AS-local data-plane secret;
    /// `cert_key` its PKI key; `res_id_cap` bounds ResIDs per ingress
    /// interface (the policing-array size knob of §4.4).
    pub fn new(as_id: IsdAs, cert_key: SecretKey, sv_key: [u8; 16], res_id_cap: u32) -> Self {
        let account = Address::from_pubkey(&cert_key.public());
        AsService {
            as_id,
            account,
            cert_key,
            sv: SecretValue::new(sv_key),
            allocators: HashMap::new(),
            shard_ranges: vec![Range { start: 0, end: res_id_cap }],
            res_id_cap,
            renewals: HashMap::new(),
            issued: Vec::new(),
            auth_token: None,
        }
    }

    /// Installs the data-plane's per-shard ResID partition so that new
    /// reservations are steered to the least-loaded shard. Only affects
    /// interfaces whose allocator has not been created yet — call before
    /// serving requests.
    pub fn align_with_shard_map(&mut self, map: &ShardMap) {
        self.set_shard_ranges(map.res_id_ranges());
    }

    /// Installs an explicit ResID partition (see
    /// [`Self::align_with_shard_map`]). Ranges are clamped to the
    /// service's `res_id_cap` so the policing-array bound holds per
    /// interface regardless of the dataplane's slot count.
    pub fn set_shard_ranges(&mut self, ranges: Vec<Range<u32>>) {
        let cap = self.res_id_cap;
        self.shard_ranges = ranges.into_iter().map(|r| r.start.min(cap)..r.end.min(cap)).collect();
        if self.shard_ranges.is_empty() {
            self.shard_ranges = vec![Range { start: 0, end: cap }];
        }
    }

    /// Per-shard active reservation counts on `ingress` (steering
    /// diagnostics); empty if the interface has no allocator yet.
    pub fn shard_loads(&self, ingress: u16) -> Vec<usize> {
        self.allocators.get(&ingress).map(|a| a.active_per_shard()).unwrap_or_default()
    }

    /// Max/min active-count ratio across shards on `ingress` (1.0 = perfectly
    /// balanced). `None` if the interface has no allocator yet.
    pub fn shard_skew(&self, ingress: u16) -> Option<f64> {
        self.allocators.get(&ingress).map(|a| a.skew())
    }

    /// The secret value shared with this AS's border routers.
    pub fn secret_value(&self) -> &SecretValue {
        &self.sv
    }

    /// The PKI public key (to install as a trust anchor).
    pub fn cert_public(&self) -> hummingbird_crypto::sig::PublicKey {
        self.cert_key.public()
    }

    /// The auth token object, once registered.
    pub fn auth_token(&self) -> Option<ObjectId> {
        self.auth_token
    }

    /// Produces the PKI possession proof for registration.
    pub fn registration_proof<R: Rng + ?Sized>(&self, rng: &mut R) -> Signature {
        crate::pki::sign_registration(&self.cert_key, self.as_id, self.account, rng)
    }

    /// Registers this AS with the asset contract.
    pub fn register<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        rng: &mut R,
    ) -> CpResult<ObjectId> {
        let proof = self.registration_proof(rng);
        let receipt = cp.register_as(self.account, self.as_id, &proof)?;
        self.auth_token = Some(receipt.value);
        Ok(receipt)
    }

    /// Issues a bandwidth asset (must be registered first).
    pub fn issue_asset(
        &mut self,
        cp: &mut ControlPlane,
        asset: BandwidthAsset,
    ) -> CpResult<ObjectId> {
        let token = self
            .auth_token
            .ok_or_else(|| ExecError::Contract("AS not registered: no auth token".into()))?;
        cp.issue(self.account, token, asset)
    }

    /// Reservations this AS has granted so far.
    pub fn issued(&self) -> &[IssuedReservation] {
        &self.issued
    }

    /// Highest ResID in use on `ingress` (policing-array sizing).
    pub fn res_id_high_water(&self, ingress: u16) -> Option<u32> {
        self.allocators.get(&ingress).and_then(|a| a.high_water())
    }

    /// Recycles ResIDs of reservations that have expired by `now`, and
    /// drops their renewal-table entries.
    pub fn expire_reservations(&mut self, now: u64) {
        for alloc in self.allocators.values_mut() {
            alloc.release_expired(now);
        }
        self.renewals.retain(|_, e| !e.interval.expired_at(now));
    }

    /// Serves every pending redeem request addressed to this AS: assigns a
    /// ResID, derives `A_K` (Eq. 2), seals the payload to the requester's
    /// ephemeral key and posts the delivery transaction. Returns the
    /// delivery object IDs.
    pub fn process_requests<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        rng: &mut R,
    ) -> Result<Vec<ObjectId>, ServiceError> {
        let pending = cp.pending_requests(self.account);
        let mut delivered = Vec::with_capacity(pending.len());
        for (request_id, request) in pending {
            let delivery = self.build_delivery(request_id, &request, rng)?;
            let receipt = cp.deliver_reservation(self.account, request_id, delivery)?;
            delivered.push(receipt.value);
        }
        Ok(delivered)
    }

    /// Builds the sealed reservation for one redeem request.
    fn build_delivery<R: Rng + ?Sized>(
        &mut self,
        request_id: ObjectId,
        request: &RedeemRequest,
        rng: &mut R,
    ) -> Result<EncryptedReservation, ServiceError> {
        let asset = &request.asset;
        let duration: u16 =
            asset.duration().try_into().map_err(|_| ServiceError::DurationTooLong)?;
        let res_start: u32 =
            asset.start_time.try_into().map_err(|_| ServiceError::StartTimeOutOfRange)?;
        // Grant at most the purchased bandwidth on the wire (round down).
        let bw_encoded =
            bwcls::encode_floor(asset.bandwidth_kbps).ok_or(ServiceError::BandwidthOutOfRange)?;

        let ranges = &self.shard_ranges;
        let allocator =
            self.allocators.entry(asset.interface).or_insert_with(|| ShardedFirstFit::new(ranges));
        let interval = Interval::new(asset.start_time, asset.expiry_time);
        let res_id = allocator.assign(interval).ok_or(ServiceError::ResIdsExhausted)?;

        let res_info = ResInfo {
            ingress: asset.interface,
            egress: request.egress_interface,
            res_id,
            bw_encoded,
            res_start,
            duration,
        };
        let key = self.sv.derive_key(&res_info);
        let payload = ReservationPayload { res_info, key: key.to_bytes() };
        let sealed = sealed::seal(&request.ephemeral_pk, &payload.encode(), rng);
        self.issued.push(IssuedReservation { res_info, granted_to: request.requester });
        self.renewals.insert(
            (asset.interface, res_id),
            RenewalEntry {
                generation: 0,
                interval,
                egress: request.egress_interface,
                bw_encoded,
                duration,
                granted_to: request.requester,
            },
        );
        Ok(EncryptedReservation { as_id: self.as_id, request: request_id, sealed })
    }

    /// Serves every pending renewal request in **one batched transaction**:
    /// accepted renewals extend the reservation's interval in place (same
    /// ResID, same hop set) and cost exactly two object touches each —
    /// delete the request, create the wrapped delivery; rejected requests
    /// are refunded their fee. This is the O(1)-per-renewal fast path: no
    /// market purchase, no asset splits, no re-coloring, no public-key
    /// crypto (the new `A_K` is wrapped under a ratchet of the previous
    /// one), and the gas-coin mutation is amortized over the whole batch.
    pub fn process_renewals<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        rng: &mut R,
    ) -> Result<RenewalReport, ServiceError> {
        let pending = cp.pending_renewals(self.account);
        if pending.is_empty() {
            return Ok(RenewalReport::default());
        }
        // Off-chain work first: validate, extend the coloring state, wrap.
        let mut plan: Vec<(ObjectId, Address, u64, Option<RenewedReservation>)> =
            Vec::with_capacity(pending.len());
        for (request_id, req) in pending {
            let delivery = self.try_renew(&req, rng);
            plan.push((request_id, req.requester, req.fee, delivery));
        }
        let receipt = cp.exec(self.account, move |ctx| {
            let mut delivered = Vec::new();
            let mut rejected = 0usize;
            for (request_id, requester, fee, delivery) in plan {
                ctx.delete(request_id)?;
                match delivery {
                    Some(d) => {
                        delivered.push(ctx.create(
                            Owner::Address(requester),
                            TAG_RENEWED,
                            d.encode(),
                        ));
                    }
                    None => {
                        ctx.pay(requester, fee);
                        rejected += 1;
                    }
                }
            }
            Ok((delivered, rejected))
        })?;
        let (delivered, rejected) = receipt.value;
        Ok(RenewalReport { delivered, rejected })
    }

    /// Validates one renewal request and, if acceptable, extends the
    /// reservation by one more duration window and wraps the new key
    /// under the previous window's `A_K` ratchet. Returns `None`
    /// (refund) on any mismatch.
    fn try_renew<R: Rng + ?Sized>(
        &mut self,
        req: &RenewalRequest,
        rng: &mut R,
    ) -> Option<RenewedReservation> {
        let key = (req.ingress, req.res_id);
        let entry = self.renewals.get(&key)?;
        if entry.generation != req.generation || entry.granted_to != req.requester {
            return None;
        }
        let old_iv = entry.interval;
        let new_end = old_iv.end.checked_add(u64::from(entry.duration))?;
        // The renewed window starts where the current one ends.
        let res_start: u32 = old_iv.end.try_into().ok()?;
        let allocator = self.allocators.get_mut(&req.ingress)?;
        if !allocator.try_extend(req.res_id, &old_iv, new_end) {
            return None; // successor conflict: fall back to a fresh purchase
        }
        let entry = self.renewals.get_mut(&key).expect("entry checked above");
        entry.interval.end = new_end;
        entry.generation += 1;
        let generation = entry.generation;
        let res_info = ResInfo {
            ingress: req.ingress,
            egress: entry.egress,
            res_id: req.res_id,
            bw_encoded: entry.bw_encoded,
            res_start,
            duration: entry.duration,
        };
        // The window being extended always covers
        // `[old end - duration, old end)`, so its A_K — the shared secret
        // the wrap key ratchets from — re-derives from SV alone.
        let prev_info = ResInfo { res_start: res_start - u32::from(entry.duration), ..res_info };
        let prev_ak = self.sv.derive_key(&prev_info);
        let wrap = renewal_wrap_key(&prev_ak.to_bytes(), generation);
        let ak = self.sv.derive_key(&res_info);
        let payload = ReservationPayload { res_info, key: ak.to_bytes() };
        let boxed = sealed::seal_with_key(&wrap, &payload.encode(), rng);
        Some(RenewedReservation {
            as_id: self.as_id,
            ingress: req.ingress,
            res_id: req.res_id,
            generation,
            boxed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let p = ReservationPayload {
            res_info: ResInfo {
                ingress: 1,
                egress: 2,
                res_id: 77,
                bw_encoded: 200,
                res_start: 1_700_000_000,
                duration: 600,
            },
            key: [9u8; 16],
        };
        assert_eq!(ReservationPayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn payload_rejects_truncation() {
        let p = ReservationPayload {
            res_info: ResInfo {
                ingress: 0,
                egress: 0,
                res_id: 0,
                bw_encoded: 0,
                res_start: 0,
                duration: 0,
            },
            key: [0u8; 16],
        };
        let bytes = p.encode();
        assert!(ReservationPayload::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
