//! A sealed-bid second-price (Vickrey) auction for bandwidth assets.
//!
//! The paper's prototype uses a posted-price spot market; §5.3 discusses
//! auctions (VCG) as the alternative mechanism for price discovery,
//! noting they "require additional rounds of communication with a smart
//! contract as well as discrete rounds in which the auctions complete".
//! This module implements that extension: a commit-reveal Vickrey auction
//! as a contract over the same ledger, demonstrating the extra rounds and
//! providing the strategy-proof allocation the paper cites.
//!
//! Protocol (each step one transaction):
//! 1. `create_auction` — seller escrows the asset under a shared auction
//!    object with a reserve price.
//! 2. `commit_bid` — bidders post `H(amount ∥ salt ∥ bidder)` along with a
//!    deposit that upper-bounds their bid (sealed: the amount is hidden).
//! 3. `close_bidding` — seller ends the commit phase.
//! 4. `reveal_bid` — bidders open their commitments.
//! 5. `settle` — highest revealed bid wins, pays the *second* price (or
//!    the reserve), everyone else is refunded; unrevealed deposits are
//!    refunded too (honest-but-forgetful bidders lose nothing but the
//!    asset).

use crate::plane::{read_asset, ControlPlane, CpResult};
use crate::types::TAG_ASSET;
use hummingbird_crypto::sha256::Sha256;
use hummingbird_ledger::codec::{DecodeError, Reader, Writer};
use hummingbird_ledger::{Address, ExecError, ObjectId, Owner, TxContext};

/// Type tag of auction shared objects.
pub const TAG_AUCTION: &str = "hummingbird::auction::Auction";
/// Type tag of bid child objects.
pub const TAG_BID: &str = "hummingbird::auction::Bid";

/// Auction phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Accepting sealed commitments.
    Commit,
    /// Accepting reveals.
    Reveal,
}

impl Phase {
    fn encode(self) -> u8 {
        match self {
            Phase::Commit => 0,
            Phase::Reveal => 1,
        }
    }
    fn decode(v: u8) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(Phase::Commit),
            1 => Ok(Phase::Reveal),
            _ => Err(DecodeError),
        }
    }
}

/// On-chain auction state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Auction {
    /// Seller receiving the proceeds.
    pub seller: Address,
    /// The escrowed asset.
    pub asset: ObjectId,
    /// Minimum acceptable price, MIST.
    pub reserve_price: u64,
    /// Current phase.
    pub phase: Phase,
    /// The settlement epoch this auction belongs to (§5.3's "discrete
    /// rounds in which the auctions complete"). The [`crate::clearing`]
    /// engine settles every auction of an epoch in one batched
    /// transaction; 0 means "unscheduled" (settled individually).
    pub close_epoch: u64,
}

impl Auction {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.seller.0);
        w.bytes(&self.asset.0);
        w.u64(self.reserve_price);
        w.u8(self.phase.encode());
        w.u64(self.close_epoch);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let a = Auction {
            seller: Address(r.array::<32>()?),
            asset: ObjectId(r.array::<32>()?),
            reserve_price: r.u64()?,
            phase: Phase::decode(r.u8()?)?,
            close_epoch: r.u64()?,
        };
        r.finish()?;
        Ok(a)
    }
}

/// On-chain bid state (crate-visible so the clearing engine can settle
/// batches with the exact same ranking logic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Bid {
    pub(crate) bidder: Address,
    pub(crate) commitment: [u8; 32],
    pub(crate) deposit: u64,
    pub(crate) revealed_amount: Option<u64>,
}

impl Bid {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.bidder.0);
        w.bytes(&self.commitment);
        w.u64(self.deposit);
        match self.revealed_amount {
            Some(a) => {
                w.bool(true);
                w.u64(a);
            }
            None => w.bool(false),
        }
        w.finish()
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let bidder = Address(r.array::<32>()?);
        let commitment = r.array::<32>()?;
        let deposit = r.u64()?;
        let revealed_amount = if r.bool()? { Some(r.u64()?) } else { None };
        r.finish()?;
        Ok(Bid { bidder, commitment, deposit, revealed_amount })
    }
}

/// The auction escrow account (derived from the auction object ID): bids'
/// deposits are held here until settlement.
pub(crate) fn escrow_address(auction: ObjectId) -> Address {
    let mut h = Sha256::new();
    h.update(b"hummingbird-auction-escrow");
    h.update(&auction.0);
    Address(h.finalize())
}

/// Computes a bid commitment: `H(amount ∥ salt ∥ bidder)`.
pub fn bid_commitment(amount: u64, salt: &[u8; 32], bidder: Address) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"hummingbird-bid-commitment");
    h.update(&amount.to_be_bytes());
    h.update(salt);
    h.update(&bidder.0);
    h.finalize()
}

/// Settlement outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuctionOutcome {
    /// Winning bidder and the asset they received, if any bid met the
    /// reserve.
    pub winner: Option<(Address, ObjectId)>,
    /// The clearing (second) price paid.
    pub price: u64,
    /// Number of revealed bids considered.
    pub revealed_bids: usize,
}

pub(crate) fn read_auction(ctx: &mut TxContext, id: ObjectId) -> Result<Auction, ExecError> {
    Ok(Auction::decode(ctx.read_ref(id, TAG_AUCTION)?)?)
}

/// Settlement contract logic for one auction, usable standalone
/// ([`ControlPlane::settle_auction`]) or inside an epoch-clearing batch
/// transaction ([`crate::ClearingEngine::clear_epoch`]), so both paths
/// produce identical winners, prices, and ledger effects by construction.
pub(crate) fn settle_auction_inner(
    ctx: &mut TxContext,
    auction_id: ObjectId,
    bid_ids: &[ObjectId],
) -> Result<AuctionOutcome, ExecError> {
    let auction = read_auction(ctx, auction_id)?;
    if auction.phase != Phase::Reveal {
        return Err(ExecError::Contract("close bidding first".into()));
    }
    let escrow = escrow_address(auction_id);

    // Load all bids.
    let mut bids = Vec::with_capacity(bid_ids.len());
    for &id in bid_ids {
        bids.push((id, Bid::decode(ctx.read_ref(id, TAG_BID)?)?));
    }
    // Rank revealed bids meeting the reserve; ties break by bid
    // object ID for determinism.
    let mut ranked: Vec<(u64, usize)> = bids
        .iter()
        .enumerate()
        .filter_map(|(i, (_, b))| {
            b.revealed_amount.filter(|&a| a >= auction.reserve_price).map(|a| (a, i))
        })
        .collect();
    ranked.sort_by(|a, b| b.cmp(a));
    let revealed_bids = ranked.len();

    let outcome = if let Some(&(top, winner_idx)) = ranked.first() {
        // Vickrey price: second-highest revealed bid or reserve.
        let price = ranked.get(1).map(|&(a, _)| a).unwrap_or(auction.reserve_price);
        debug_assert!(price <= top);
        let winner = bids[winner_idx].1.bidder;
        // Pay the seller from escrow, refund the winner's change.
        ctx.pay_from(escrow, auction.seller, price);
        ctx.pay_from(escrow, winner, bids[winner_idx].1.deposit - price);
        // Refund every other deposit (revealed or not).
        for (i, (_, b)) in bids.iter().enumerate() {
            if i != winner_idx {
                ctx.pay_from(escrow, b.bidder, b.deposit);
            }
        }
        ctx.transfer(auction.asset, Owner::Address(winner))?;
        AuctionOutcome { winner: Some((winner, auction.asset)), price, revealed_bids }
    } else {
        // No valid bid: refund everyone, return the asset.
        for (_, b) in &bids {
            ctx.pay_from(escrow, b.bidder, b.deposit);
        }
        ctx.transfer(auction.asset, Owner::Address(auction.seller))?;
        AuctionOutcome { winner: None, price: 0, revealed_bids }
    };
    // Tear down: delete bids and the auction (storage rebates).
    for (id, _) in &bids {
        ctx.delete(*id)?;
    }
    ctx.delete(auction_id)?;
    Ok(outcome)
}

impl ControlPlane {
    /// Step 1: creates an auction, escrowing the seller's asset.
    pub fn create_auction(
        &mut self,
        seller: Address,
        asset_id: ObjectId,
        reserve_price: u64,
    ) -> CpResult<ObjectId> {
        self.create_auction_at(seller, asset_id, reserve_price, 0)
    }

    /// Like [`Self::create_auction`], but stamps the auction with the
    /// settlement epoch it belongs to so a [`crate::ClearingEngine`] can
    /// batch-settle it together with every other auction of that epoch.
    pub fn create_auction_at(
        &mut self,
        seller: Address,
        asset_id: ObjectId,
        reserve_price: u64,
        close_epoch: u64,
    ) -> CpResult<ObjectId> {
        self.exec(seller, move |ctx| {
            read_asset(ctx, asset_id)?; // ownership check
            let auction = Auction {
                seller: ctx.sender(),
                asset: asset_id,
                reserve_price,
                phase: Phase::Commit,
                close_epoch,
            };
            let auction_id = ctx.create(Owner::Shared, TAG_AUCTION, auction.encode());
            ctx.transfer(asset_id, Owner::Object(auction_id))?;
            Ok(auction_id)
        })
    }

    /// Step 2: posts a sealed bid with a deposit (the bid upper bound).
    pub fn commit_bid(
        &mut self,
        bidder: Address,
        auction_id: ObjectId,
        commitment: [u8; 32],
        deposit: u64,
    ) -> CpResult<ObjectId> {
        self.exec(bidder, move |ctx| {
            let auction = read_auction(ctx, auction_id)?;
            if auction.phase != Phase::Commit {
                return Err(ExecError::Contract("bidding is closed".into()));
            }
            ctx.pay(escrow_address(auction_id), deposit);
            let bid = Bid { bidder: ctx.sender(), commitment, deposit, revealed_amount: None };
            Ok(ctx.create(Owner::Object(auction_id), TAG_BID, bid.encode()))
        })
    }

    /// Step 3: the seller closes the commit phase.
    pub fn close_bidding(&mut self, seller: Address, auction_id: ObjectId) -> CpResult<()> {
        self.exec(seller, move |ctx| {
            let mut auction = read_auction(ctx, auction_id)?;
            if auction.seller != ctx.sender() {
                return Err(ExecError::Contract("only the seller can close bidding".into()));
            }
            if auction.phase != Phase::Commit {
                return Err(ExecError::Contract("already closed".into()));
            }
            auction.phase = Phase::Reveal;
            ctx.write(auction_id, TAG_AUCTION, auction.encode())
        })
    }

    /// Step 4: opens a commitment. Rejects amounts above the deposit and
    /// commitments that do not verify.
    pub fn reveal_bid(
        &mut self,
        bidder: Address,
        auction_id: ObjectId,
        bid_id: ObjectId,
        amount: u64,
        salt: [u8; 32],
    ) -> CpResult<()> {
        self.exec(bidder, move |ctx| {
            let auction = read_auction(ctx, auction_id)?;
            if auction.phase != Phase::Reveal {
                return Err(ExecError::Contract("not in the reveal phase".into()));
            }
            let mut bid = Bid::decode(ctx.read_ref(bid_id, TAG_BID)?)?;
            if bid.bidder != ctx.sender() {
                return Err(ExecError::Contract("not your bid".into()));
            }
            if bid.revealed_amount.is_some() {
                return Err(ExecError::Contract("already revealed".into()));
            }
            if amount > bid.deposit {
                return Err(ExecError::Contract("bid exceeds the deposit".into()));
            }
            if bid_commitment(amount, &salt, ctx.sender()) != bid.commitment {
                return Err(ExecError::Contract("commitment does not verify".into()));
            }
            bid.revealed_amount = Some(amount);
            ctx.write(bid_id, TAG_BID, bid.encode())
        })
    }

    /// Step 5: settles the auction. Callable by anyone once in the reveal
    /// phase; pass every bid object (the chain scan is public).
    pub fn settle_auction(
        &mut self,
        caller: Address,
        auction_id: ObjectId,
        bid_ids: &[ObjectId],
    ) -> CpResult<AuctionOutcome> {
        let bid_ids = bid_ids.to_vec();
        self.exec(caller, move |ctx| settle_auction_inner(ctx, auction_id, &bid_ids))
    }

    /// Public chain scan: bid objects of an auction, in object-ID order.
    /// Served from the ledger's owner/type index — O(bids of this
    /// auction), not O(total objects).
    pub fn auction_bids(&self, auction_id: ObjectId) -> Vec<ObjectId> {
        self.ledger
            .objects_owned_by(Owner::Object(auction_id), TAG_BID)
            .map(|e| e.meta.id)
            .collect()
    }

    /// Public chain scan: the asset escrowed under an auction (checked
    /// against [`TAG_ASSET`]).
    pub fn auction_state(&self, auction_id: ObjectId) -> Option<Auction> {
        let entry = self.ledger.object(auction_id)?;
        if entry.meta.type_tag != TAG_AUCTION {
            return None;
        }
        let a = Auction::decode(&entry.data).ok()?;
        debug_assert_eq!(self.ledger.object(a.asset)?.meta.type_tag, TAG_ASSET);
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::TrustAnchors;
    use crate::types::{BandwidthAsset, Direction};
    use crate::AsService;
    use hummingbird_crypto::sig::SecretKey;
    use hummingbird_wire::IsdAs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct AuctionWorld {
        cp: ControlPlane,
        seller: Address,
        asset: ObjectId,
    }

    fn setup() -> AuctionWorld {
        let mut rng = StdRng::seed_from_u64(21);
        let cert = SecretKey::from_seed(b"auction-as");
        let as_id = IsdAs::new(1, 0x5005);
        let mut anchors = TrustAnchors::new();
        anchors.install(as_id, cert.public());
        let mut cp = ControlPlane::new(anchors);
        let mut service = AsService::new(as_id, cert, [2u8; 16], 100);
        cp.faucet(service.account, 1000);
        service.register(&mut cp, &mut rng).unwrap();
        let asset = service
            .issue_asset(
                &mut cp,
                BandwidthAsset {
                    as_id,
                    bandwidth_kbps: 10_000,
                    start_time: 0,
                    expiry_time: 3600,
                    interface: 1,
                    direction: Direction::Ingress,
                    time_granularity: 60,
                    min_bandwidth_kbps: 100,
                },
            )
            .unwrap()
            .value;
        AuctionWorld { cp, seller: service.account, asset }
    }

    fn bidder(w: &mut AuctionWorld, name: &str) -> Address {
        let a = Address::from_label(name);
        w.cp.faucet(a, 1000);
        a
    }

    #[test]
    fn vickrey_winner_pays_second_price() {
        let mut w = setup();
        let auction = w.cp.create_auction(w.seller, w.asset, 1_000).unwrap().value;
        let alice = bidder(&mut w, "alice");
        let bob = bidder(&mut w, "bob");
        let carol = bidder(&mut w, "carol");

        let salt = [7u8; 32];
        let bids = [(alice, 50_000u64), (bob, 30_000), (carol, 10_000)];
        let mut bid_ids = Vec::new();
        for (who, amount) in bids {
            let c = bid_commitment(amount, &salt, who);
            bid_ids.push(w.cp.commit_bid(who, auction, c, amount).unwrap().value);
        }
        w.cp.close_bidding(w.seller, auction).unwrap();
        for ((who, amount), &bid_id) in bids.iter().zip(&bid_ids) {
            w.cp.reveal_bid(*who, auction, bid_id, *amount, salt).unwrap();
        }
        let seller_before = w.cp.ledger.balance(w.seller);
        let outcome = w.cp.settle_auction(w.seller, auction, &bid_ids).unwrap().value;
        assert_eq!(outcome.winner.map(|(a, _)| a), Some(alice));
        assert_eq!(outcome.price, 30_000, "winner pays the second price");
        // Asset went to alice.
        let asset = outcome.winner.unwrap().1;
        assert_eq!(w.cp.ledger.object(asset).unwrap().meta.owner, Owner::Address(alice));
        // Seller received exactly the clearing price.
        assert!(w.cp.ledger.balance(w.seller) >= seller_before + 30_000);
        // Auction and bids were destroyed.
        assert!(w.cp.auction_state(auction).is_none());
    }

    #[test]
    fn losers_and_winner_change_are_refunded() {
        let mut w = setup();
        let auction = w.cp.create_auction(w.seller, w.asset, 100).unwrap().value;
        let alice = bidder(&mut w, "alice");
        let bob = bidder(&mut w, "bob");
        let alice_start = w.cp.ledger.balance(alice);
        let bob_start = w.cp.ledger.balance(bob);
        let salt = [1u8; 32];
        let a_bid =
            w.cp.commit_bid(alice, auction, bid_commitment(5_000, &salt, alice), 5_000)
                .unwrap()
                .value;
        let b_bid =
            w.cp.commit_bid(bob, auction, bid_commitment(2_000, &salt, bob), 2_000).unwrap().value;
        w.cp.close_bidding(w.seller, auction).unwrap();
        w.cp.reveal_bid(alice, auction, a_bid, 5_000, salt).unwrap();
        w.cp.reveal_bid(bob, auction, b_bid, 2_000, salt).unwrap();
        w.cp.settle_auction(w.seller, auction, &[a_bid, b_bid]).unwrap();
        // Bob got his whole deposit back; Alice paid 2000 (plus gas).
        let gas_slack = 100_000_000; // generous bound on gas fees in MIST
        assert!(bob_start - w.cp.ledger.balance(bob) < gas_slack);
        let alice_spent = alice_start - w.cp.ledger.balance(alice);
        assert!(alice_spent >= 2_000 && alice_spent < 2_000 + gas_slack);
    }

    #[test]
    fn reserve_price_is_enforced() {
        let mut w = setup();
        let auction = w.cp.create_auction(w.seller, w.asset, 10_000).unwrap().value;
        let alice = bidder(&mut w, "alice");
        let salt = [2u8; 32];
        let bid_id =
            w.cp.commit_bid(alice, auction, bid_commitment(5_000, &salt, alice), 5_000)
                .unwrap()
                .value;
        w.cp.close_bidding(w.seller, auction).unwrap();
        w.cp.reveal_bid(alice, auction, bid_id, 5_000, salt).unwrap();
        let outcome = w.cp.settle_auction(w.seller, auction, &[bid_id]).unwrap().value;
        assert_eq!(outcome.winner, None, "below-reserve bid cannot win");
        // Asset returned to the seller.
        assert_eq!(w.cp.ledger.object(w.asset).unwrap().meta.owner, Owner::Address(w.seller));
    }

    #[test]
    fn lying_about_the_commitment_fails() {
        let mut w = setup();
        let auction = w.cp.create_auction(w.seller, w.asset, 100).unwrap().value;
        let alice = bidder(&mut w, "alice");
        let salt = [3u8; 32];
        let bid_id =
            w.cp.commit_bid(alice, auction, bid_commitment(5_000, &salt, alice), 5_000)
                .unwrap()
                .value;
        w.cp.close_bidding(w.seller, auction).unwrap();
        // Revealing a different amount than committed is rejected.
        assert!(w.cp.reveal_bid(alice, auction, bid_id, 4_000, salt).is_err());
        // Revealing above the deposit is rejected even with a matching
        // commitment.
        {
            // No second asset in this world; just verify the deposit rule
            // with a fresh commit in a new auction isn't needed — the
            // amount>deposit check precedes commitment verification.
            assert!(w.cp.reveal_bid(alice, auction, bid_id, 6_000, salt).is_err());
        }
    }

    #[test]
    fn phases_are_enforced() {
        let mut w = setup();
        let auction = w.cp.create_auction(w.seller, w.asset, 100).unwrap().value;
        let alice = bidder(&mut w, "alice");
        let salt = [4u8; 32];
        let bid_id =
            w.cp.commit_bid(alice, auction, bid_commitment(500, &salt, alice), 500).unwrap().value;
        // Cannot reveal or settle during the commit phase.
        assert!(w.cp.reveal_bid(alice, auction, bid_id, 500, salt).is_err());
        assert!(w.cp.settle_auction(w.seller, auction, &[bid_id]).is_err());
        // Only the seller can close.
        assert!(w.cp.close_bidding(alice, auction).is_err());
        w.cp.close_bidding(w.seller, auction).unwrap();
        // No more commits after closing.
        let bob = bidder(&mut w, "bob");
        assert!(w.cp.commit_bid(bob, auction, bid_commitment(900, &salt, bob), 900).is_err());
    }

    #[test]
    fn unrevealed_bids_are_refunded_and_cannot_win() {
        let mut w = setup();
        let auction = w.cp.create_auction(w.seller, w.asset, 100).unwrap().value;
        let alice = bidder(&mut w, "alice");
        let bob = bidder(&mut w, "bob");
        let bob_start = w.cp.ledger.balance(bob);
        let salt = [5u8; 32];
        let a_bid =
            w.cp.commit_bid(alice, auction, bid_commitment(1_000, &salt, alice), 1_000)
                .unwrap()
                .value;
        let b_bid =
            w.cp.commit_bid(bob, auction, bid_commitment(9_999, &salt, bob), 9_999).unwrap().value;
        w.cp.close_bidding(w.seller, auction).unwrap();
        // Bob never reveals — his (higher) bid cannot win.
        w.cp.reveal_bid(alice, auction, a_bid, 1_000, salt).unwrap();
        let outcome = w.cp.settle_auction(w.seller, auction, &[a_bid, b_bid]).unwrap().value;
        assert_eq!(outcome.winner.map(|(a, _)| a), Some(alice));
        assert_eq!(outcome.price, 100, "single valid bid pays the reserve");
        // Bob's deposit came back (minus his own gas).
        let gas_slack = 100_000_000;
        assert!(bob_start - w.cp.ledger.balance(bob) < gas_slack);
    }

    #[test]
    fn commitments_hide_the_amount() {
        // Same amount, different salts and bidders → unlinkable digests.
        let a = Address::from_label("x");
        let b = Address::from_label("y");
        let c1 = bid_commitment(1000, &[1u8; 32], a);
        let c2 = bid_commitment(1000, &[2u8; 32], a);
        let c3 = bid_commitment(1000, &[1u8; 32], b);
        assert_ne!(c1, c2);
        assert_ne!(c1, c3);
    }
}
