//! The end-host market client (paper §6.1, "Market Client Application").
//!
//! Handles buying and redeeming assets, holds the ephemeral decryption keys
//! for in-flight redeem requests, and collects the sealed deliveries into
//! usable [`GrantedReservation`]s for the data plane.

use crate::market::{HopPurchase, PurchaseSpec};
use crate::plane::{ControlPlane, CpResult};
use crate::renewal::{renewal_wrap_key, RenewalRequest};
use crate::service::ReservationPayload;
use hummingbird_crypto::sealed;
use hummingbird_crypto::sig::SecretKey;
use hummingbird_crypto::{AuthKey, ResInfo};
use hummingbird_ledger::{Address, ExecError, ObjectId};
use hummingbird_wire::IsdAs;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// A reservation the client can use on the data plane: the `ResInfo` to put
/// in the flyover hop field plus the authentication key `A_K`.
#[derive(Clone, Debug)]
pub struct GrantedReservation {
    /// The granting AS.
    pub as_id: IsdAs,
    /// Data-plane reservation description.
    pub res_info: ResInfo,
    /// The expanded authentication key.
    pub key: AuthKey,
}

/// The end-host client state.
pub struct Client {
    /// On-chain account.
    pub account: Address,
    /// Ephemeral secret keys of in-flight redeem requests, keyed by the
    /// request object they belong to — deliveries echo that ID, so each
    /// one is opened with exactly its key (no trial decryption).
    pending_eph: HashMap<ObjectId, SecretKey>,
    granted: Vec<GrantedReservation>,
    /// Latest granted window per `(as, ingress, res_id)` — the entry a
    /// renewal delivery's unwrap key ratchets from.
    latest: HashMap<(IsdAs, u16, u32), usize>,
    /// Renewal deliveries already unwrapped (they stay on chain, so a
    /// later collect pass must not ingest them twice).
    seen_renewals: HashSet<ObjectId>,
    /// Delivery objects (redeem and renewal) whose payload has been
    /// ingested — dead weight on chain until [`Self::sweep_collected`]
    /// deletes them for the storage rebate.
    reclaimable: Vec<ObjectId>,
}

impl Client {
    /// Creates a client for `account`.
    pub fn new(account: Address) -> Self {
        Client {
            account,
            pending_eph: HashMap::new(),
            granted: Vec::new(),
            latest: HashMap::new(),
            seen_renewals: HashSet::new(),
            reclaimable: Vec::new(),
        }
    }

    /// Appends a granted window and points the renewal index at it.
    fn push_granted(&mut self, g: GrantedReservation) {
        let key = (g.as_id, g.res_info.ingress, g.res_info.res_id);
        self.latest.insert(key, self.granted.len());
        self.granted.push(g);
    }

    /// Reservations collected so far.
    pub fn reservations(&self) -> &[GrantedReservation] {
        &self.granted
    }

    /// Number of redeem requests still awaiting delivery.
    pub fn pending_count(&self) -> usize {
        self.pending_eph.len()
    }

    /// Buys a fraction of one listing (no redeem).
    pub fn buy(
        &mut self,
        cp: &mut ControlPlane,
        market: ObjectId,
        listing: ObjectId,
        spec: PurchaseSpec,
    ) -> CpResult<ObjectId> {
        cp.buy(self.account, market, listing, spec)
    }

    /// Atomically buys and redeems reservations for a whole path in one
    /// transaction. Each hop gets a fresh ephemeral key; the matching
    /// secrets are retained to open the deliveries later.
    pub fn buy_and_redeem_path<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        market: ObjectId,
        hops: &[(ObjectId, ObjectId, PurchaseSpec)],
        rng: &mut R,
    ) -> CpResult<Vec<ObjectId>> {
        let mut eph_secrets = Vec::with_capacity(hops.len());
        let purchases: Vec<HopPurchase> = hops
            .iter()
            .map(|&(ingress_listing, egress_listing, spec)| {
                let sk = SecretKey::generate(rng);
                let pk = sk.public();
                eph_secrets.push(sk);
                HopPurchase { ingress_listing, egress_listing, spec, ephemeral_pk: pk }
            })
            .collect();
        let receipt = cp.buy_and_redeem_path(self.account, market, &purchases)?;
        // Only remember the ephemeral secrets if the purchase committed —
        // keyed by the per-hop request IDs the receipt returns.
        for (request_id, sk) in receipt.value.iter().zip(eph_secrets) {
            self.pending_eph.insert(*request_id, sk);
        }
        Ok(receipt)
    }

    /// Redeems an already-owned ingress/egress asset pair.
    pub fn redeem<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        ingress: ObjectId,
        egress: ObjectId,
        rng: &mut R,
    ) -> CpResult<ObjectId> {
        let sk = SecretKey::generate(rng);
        let pk = sk.public();
        let receipt = cp.redeem(self.account, ingress, egress, pk)?;
        self.pending_eph.insert(receipt.value, sk);
        Ok(receipt)
    }

    /// Requests a renewal of a reservation this client holds: same hop
    /// set, same ResID, one more duration window (the O(1) fast path —
    /// no market purchase, no re-coloring, no key exchange). `generation`
    /// is the number of renewals already served for this reservation; the
    /// fee is paid up front and refunded by the AS if the renewal is
    /// rejected. The renewed key arrives as a [`RenewedReservation`]
    /// delivery, collected with [`Self::collect_renewals`].
    ///
    /// [`RenewedReservation`]: crate::renewal::RenewedReservation
    pub fn request_renewal(
        &mut self,
        cp: &mut ControlPlane,
        as_account: Address,
        ingress: u16,
        res_id: u32,
        generation: u32,
        fee: u64,
    ) -> CpResult<ObjectId> {
        let request = RenewalRequest { requester: self.account, ingress, res_id, generation, fee };
        cp.request_renewal(self.account, as_account, request)
    }

    /// Requests renewals for a whole batch of reservations in **one
    /// transaction** (see [`ControlPlane::request_renewals`]): each item is
    /// `(ingress, res_id, generation)`; `fee` is paid per renewal.
    pub fn request_renewals(
        &mut self,
        cp: &mut ControlPlane,
        as_account: Address,
        items: &[(u16, u32, u32)],
        fee: u64,
    ) -> CpResult<Vec<ObjectId>> {
        let requests = items
            .iter()
            .map(|&(ingress, res_id, generation)| RenewalRequest {
                requester: self.account,
                ingress,
                res_id,
                generation,
                fee,
            })
            .collect();
        cp.request_renewals(self.account, as_account, requests)
    }

    /// Collects every renewed-reservation delivery currently owned by this
    /// client: for each, finds the granted reservation it extends, derives
    /// the unwrap key from that reservation's `A_K` and the delivery's
    /// generation, and — if the tag verifies — adds the new window as a
    /// fresh [`GrantedReservation`]. Returns how many were collected.
    /// Deliveries that match no held reservation are left untouched.
    pub fn collect_renewals(&mut self, cp: &ControlPlane) -> Result<usize, ExecError> {
        let deliveries = cp.renewal_deliveries_for(self.account);
        let mut collected = 0;
        for (id, delivery) in deliveries {
            if self.seen_renewals.contains(&id) {
                continue;
            }
            // The latest granted window for this (as, ingress, res_id) is
            // the one whose key the AS ratcheted.
            let key = (delivery.as_id, delivery.ingress, delivery.res_id);
            let Some(&idx) = self.latest.get(&key) else { continue };
            let wrap = renewal_wrap_key(&self.granted[idx].key.to_bytes(), delivery.generation);
            let Ok(plain) = sealed::open_with_key(&wrap, &delivery.boxed) else { continue };
            let payload = ReservationPayload::decode(&plain)?;
            self.push_granted(GrantedReservation {
                as_id: delivery.as_id,
                res_info: payload.res_info,
                key: AuthKey::new(payload.key),
            });
            self.seen_renewals.insert(id);
            self.reclaimable.push(id);
            collected += 1;
        }
        Ok(collected)
    }

    /// Collects and decrypts every delivery currently owned by this client,
    /// turning them into usable reservations. Returns how many were
    /// collected. Each delivery names the redeem request it answers, so it
    /// is opened with exactly that request's ephemeral key; deliveries for
    /// requests this instance did not make (or that fail to open) are left
    /// untouched.
    pub fn collect_deliveries(&mut self, cp: &ControlPlane) -> Result<usize, ExecError> {
        let deliveries = cp.deliveries_for(self.account);
        let mut collected = 0;
        for (id, delivery) in deliveries {
            let Some(sk) = self.pending_eph.get(&delivery.request) else { continue };
            let Ok(plain) = sealed::open(sk, &delivery.sealed) else { continue };
            let payload = ReservationPayload::decode(&plain)?;
            self.push_granted(GrantedReservation {
                as_id: delivery.as_id,
                res_info: payload.res_info,
                key: AuthKey::new(payload.key),
            });
            self.pending_eph.remove(&delivery.request);
            self.reclaimable.push(id);
            collected += 1;
        }
        Ok(collected)
    }

    /// Deletes every delivery object whose payload this client has already
    /// ingested, in one transaction, collecting the storage rebates
    /// (see [`ControlPlane::reclaim`]). Returns how many were reclaimed.
    pub fn sweep_collected(&mut self, cp: &mut ControlPlane) -> Result<usize, ExecError> {
        if self.reclaimable.is_empty() {
            return Ok(0);
        }
        let ids = std::mem::take(&mut self.reclaimable);
        let n = ids.len();
        cp.reclaim(self.account, ids)?;
        Ok(n)
    }

    /// Convenience: the subset of granted reservations issued by `as_id`.
    pub fn reservations_at(&self, as_id: IsdAs) -> Vec<&GrantedReservation> {
        self.granted.iter().filter(|g| g.as_id == as_id).collect()
    }

    /// Shares a reservation with another party (paper §4.1: reservations
    /// are not bound to network identities, so the key can simply be
    /// handed over — e.g. to the destination for a reverse path, App. C).
    pub fn export_reservation(&self, index: usize) -> Option<(IsdAs, ResInfo, [u8; 16])> {
        self.granted.get(index).map(|g| (g.as_id, g.res_info, g.key.to_bytes()))
    }

    /// Imports a reservation shared by another party.
    pub fn import_reservation(&mut self, as_id: IsdAs, res_info: ResInfo, key: [u8; 16]) {
        self.push_granted(GrantedReservation { as_id, res_info, key: AuthKey::new(key) });
    }
}
