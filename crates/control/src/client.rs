//! The end-host market client (paper §6.1, "Market Client Application").
//!
//! Handles buying and redeeming assets, holds the ephemeral decryption keys
//! for in-flight redeem requests, and collects the sealed deliveries into
//! usable [`GrantedReservation`]s for the data plane.

use crate::market::{HopPurchase, PurchaseSpec};
use crate::plane::{ControlPlane, CpResult};
use crate::service::ReservationPayload;
use hummingbird_crypto::sealed;
use hummingbird_crypto::sig::SecretKey;
use hummingbird_crypto::{AuthKey, ResInfo};
use hummingbird_ledger::{Address, ExecError, ObjectId};
use hummingbird_wire::IsdAs;
use rand::Rng;

/// A reservation the client can use on the data plane: the `ResInfo` to put
/// in the flyover hop field plus the authentication key `A_K`.
#[derive(Clone, Debug)]
pub struct GrantedReservation {
    /// The granting AS.
    pub as_id: IsdAs,
    /// Data-plane reservation description.
    pub res_info: ResInfo,
    /// The expanded authentication key.
    pub key: AuthKey,
}

/// The end-host client state.
pub struct Client {
    /// On-chain account.
    pub account: Address,
    /// Ephemeral secret keys of in-flight redeem requests.
    pending_eph: Vec<SecretKey>,
    granted: Vec<GrantedReservation>,
}

impl Client {
    /// Creates a client for `account`.
    pub fn new(account: Address) -> Self {
        Client { account, pending_eph: Vec::new(), granted: Vec::new() }
    }

    /// Reservations collected so far.
    pub fn reservations(&self) -> &[GrantedReservation] {
        &self.granted
    }

    /// Number of redeem requests still awaiting delivery.
    pub fn pending_count(&self) -> usize {
        self.pending_eph.len()
    }

    /// Buys a fraction of one listing (no redeem).
    pub fn buy(
        &mut self,
        cp: &mut ControlPlane,
        market: ObjectId,
        listing: ObjectId,
        spec: PurchaseSpec,
    ) -> CpResult<ObjectId> {
        cp.buy(self.account, market, listing, spec)
    }

    /// Atomically buys and redeems reservations for a whole path in one
    /// transaction. Each hop gets a fresh ephemeral key; the matching
    /// secrets are retained to open the deliveries later.
    pub fn buy_and_redeem_path<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        market: ObjectId,
        hops: &[(ObjectId, ObjectId, PurchaseSpec)],
        rng: &mut R,
    ) -> CpResult<Vec<ObjectId>> {
        let mut eph_secrets = Vec::with_capacity(hops.len());
        let purchases: Vec<HopPurchase> = hops
            .iter()
            .map(|&(ingress_listing, egress_listing, spec)| {
                let sk = SecretKey::generate(rng);
                let pk = sk.public();
                eph_secrets.push(sk);
                HopPurchase { ingress_listing, egress_listing, spec, ephemeral_pk: pk }
            })
            .collect();
        let receipt = cp.buy_and_redeem_path(self.account, market, &purchases)?;
        // Only remember the ephemeral secrets if the purchase committed.
        self.pending_eph.extend(eph_secrets);
        Ok(receipt)
    }

    /// Redeems an already-owned ingress/egress asset pair.
    pub fn redeem<R: Rng + ?Sized>(
        &mut self,
        cp: &mut ControlPlane,
        ingress: ObjectId,
        egress: ObjectId,
        rng: &mut R,
    ) -> CpResult<ObjectId> {
        let sk = SecretKey::generate(rng);
        let pk = sk.public();
        let receipt = cp.redeem(self.account, ingress, egress, pk)?;
        self.pending_eph.push(sk);
        Ok(receipt)
    }

    /// Collects and decrypts every delivery currently owned by this client,
    /// turning them into usable reservations. Returns how many were
    /// collected. Deliveries that fail to decrypt with any pending key are
    /// left untouched (they may belong to a different client instance).
    pub fn collect_deliveries(&mut self, cp: &ControlPlane) -> Result<usize, ExecError> {
        let deliveries = cp.deliveries_for(self.account);
        let mut collected = 0;
        for (_id, delivery) in deliveries {
            let mut opened = None;
            for (i, sk) in self.pending_eph.iter().enumerate() {
                if let Ok(plain) = sealed::open(sk, &delivery.sealed) {
                    opened = Some((i, plain));
                    break;
                }
            }
            let Some((key_idx, plain)) = opened else { continue };
            let payload = ReservationPayload::decode(&plain)?;
            self.granted.push(GrantedReservation {
                as_id: delivery.as_id,
                res_info: payload.res_info,
                key: AuthKey::new(payload.key),
            });
            self.pending_eph.remove(key_idx);
            collected += 1;
        }
        Ok(collected)
    }

    /// Convenience: the subset of granted reservations issued by `as_id`.
    pub fn reservations_at(&self, as_id: IsdAs) -> Vec<&GrantedReservation> {
        self.granted.iter().filter(|g| g.as_id == as_id).collect()
    }

    /// Shares a reservation with another party (paper §4.1: reservations
    /// are not bound to network identities, so the key can simply be
    /// handed over — e.g. to the destination for a reverse path, App. C).
    pub fn export_reservation(&self, index: usize) -> Option<(IsdAs, ResInfo, [u8; 16])> {
        self.granted.get(index).map(|g| (g.as_id, g.res_info, g.key.to_bytes()))
    }

    /// Imports a reservation shared by another party.
    pub fn import_reservation(&mut self, as_id: IsdAs, res_info: ResInfo, key: [u8; 16]) {
        self.granted.push(GrantedReservation { as_id, res_info, key: AuthKey::new(key) });
    }
}
