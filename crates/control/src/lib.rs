//! # hummingbird-control
//!
//! The Hummingbird control plane (paper §4.2 and §6): bandwidth assets as
//! tradable on-chain objects, a marketplace, atomic path purchases, and the
//! redeem flow that turns an asset pair into data-plane reservation keys.
//!
//! * [`types`] — on-chain object types (assets, auth tokens, redeem
//!   requests, deliveries, listings).
//! * [`plane`] — the [`ControlPlane`] facade over the ledger with the
//!   asset-contract entry points (issue / split / fuse / redeem / deliver).
//! * [`market`] — the marketplace contract and the one-transaction atomic
//!   buy-and-redeem for whole paths.
//! * [`service`] — the AS-side service: ResID assignment (interval
//!   coloring), `A_K` derivation, sealed delivery.
//! * [`client`] — the end-host client: purchases, ephemeral keys,
//!   collecting deliveries into usable reservations.
//! * [`pki`] — trust anchors and AS registration possession proofs.
//! * [`clearing`] — epoch-batched auction settlement: one transaction
//!   clears every auction of a settlement round.
//! * [`renewal`] — the O(1) renewal fast path: extend a live reservation
//!   without a market purchase or re-coloring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod clearing;
pub mod client;
pub mod market;
pub mod pki;
pub mod plane;
pub mod renewal;
pub mod service;
pub mod types;

pub use auction::{bid_commitment, Auction, AuctionOutcome, Phase};
pub use clearing::ClearingEngine;
pub use client::{Client, GrantedReservation};
pub use market::{HopPurchase, PurchaseSpec};
pub use plane::{ControlPlane, CpResult};
pub use renewal::{renewal_wrap_key, RenewalRequest, RenewedReservation, TAG_RENEWAL, TAG_RENEWED};
pub use service::{AsService, IssuedReservation, RenewalReport, ReservationPayload, ServiceError};
pub use types::{
    AuthToken, BandwidthAsset, Direction, EncryptedReservation, Listing, RedeemRequest,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::TrustAnchors;
    use hummingbird_crypto::sig::SecretKey;
    use hummingbird_ledger::{Address, ExecPath, ObjectId};
    use hummingbird_wire::IsdAs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const HOUR: u64 = 3600;

    struct World {
        cp: ControlPlane,
        service: AsService,
        market: ObjectId,
        client: Client,
        rng: StdRng,
    }

    fn asset_template(dir: Direction, interface: u16) -> BandwidthAsset {
        BandwidthAsset {
            as_id: IsdAs::new(1, 0x1_0001),
            bandwidth_kbps: 100_000,
            start_time: 0,
            expiry_time: 10 * HOUR,
            interface,
            direction: dir,
            time_granularity: 60,
            min_bandwidth_kbps: 100,
        }
    }

    /// One registered AS, one marketplace, one funded client.
    fn setup() -> World {
        let mut rng = StdRng::seed_from_u64(42);
        let cert_key = SecretKey::from_seed(b"as-1");
        let as_id = IsdAs::new(1, 0x1_0001);
        let mut anchors = TrustAnchors::new();
        anchors.install(as_id, cert_key.public());
        let mut cp = ControlPlane::new(anchors);
        let mut service = AsService::new(as_id, cert_key, [7u8; 16], 1 << 20);
        cp.faucet(service.account, 1000);
        service.register(&mut cp, &mut rng).unwrap();

        let market = cp.create_marketplace(service.account).unwrap().value;
        cp.register_seller(service.account, market).unwrap();

        let client_addr = Address::from_label("client-1");
        cp.faucet(client_addr, 1000);
        let client = Client::new(client_addr);
        World { cp, service, market, client, rng }
    }

    fn list_pair(w: &mut World, interface_in: u16, interface_eg: u16) -> (ObjectId, ObjectId) {
        let ing = w
            .service
            .issue_asset(&mut w.cp, asset_template(Direction::Ingress, interface_in))
            .unwrap()
            .value;
        let eg = w
            .service
            .issue_asset(&mut w.cp, asset_template(Direction::Egress, interface_eg))
            .unwrap()
            .value;
        let account = w.service.account;
        let l_in = w.cp.create_listing(account, w.market, ing, 1).unwrap().value;
        let l_eg = w.cp.create_listing(account, w.market, eg, 1).unwrap().value;
        (l_in, l_eg)
    }

    #[test]
    fn registration_requires_valid_proof() {
        let mut rng = StdRng::seed_from_u64(1);
        let honest = SecretKey::from_seed(b"honest-as");
        let as_id = IsdAs::new(1, 5);
        let mut anchors = TrustAnchors::new();
        anchors.install(as_id, honest.public());
        let mut cp = ControlPlane::new(anchors);

        // An attacker with a different key cannot register AS 1-5.
        let attacker = SecretKey::from_seed(b"attacker");
        let attacker_addr = Address::from_pubkey(&attacker.public());
        cp.faucet(attacker_addr, 10);
        let bad_proof = crate::pki::sign_registration(&attacker, as_id, attacker_addr, &mut rng);
        assert!(cp.register_as(attacker_addr, as_id, &bad_proof).is_err());
    }

    #[test]
    fn issue_requires_matching_auth_token() {
        let mut w = setup();
        // Token is for AS 1-0x10001; issuing for another AS must fail.
        let mut foreign = asset_template(Direction::Ingress, 1);
        foreign.as_id = IsdAs::new(9, 9);
        let err = w.service.issue_asset(&mut w.cp, foreign).unwrap_err();
        assert!(matches!(err, hummingbird_ledger::ExecError::Contract(_)));
    }

    #[test]
    fn split_and_fuse_roundtrip() {
        let mut w = setup();
        let asset =
            w.service.issue_asset(&mut w.cp, asset_template(Direction::Ingress, 1)).unwrap().value;
        let account = w.service.account;
        let (head, tail) = w.cp.split_time(account, asset, 2 * HOUR).unwrap().value;
        assert_eq!(w.cp.asset(head).unwrap().expiry_time, 2 * HOUR);
        assert_eq!(w.cp.asset(tail).unwrap().start_time, 2 * HOUR);

        let (left, right) = w.cp.split_bandwidth(account, head, 40_000).unwrap().value;
        assert_eq!(w.cp.asset(left).unwrap().bandwidth_kbps, 40_000);
        assert_eq!(w.cp.asset(right).unwrap().bandwidth_kbps, 60_000);

        // Fuse back.
        let fused = w.cp.fuse_bandwidth(account, left, right).unwrap().value;
        assert_eq!(w.cp.asset(fused).unwrap().bandwidth_kbps, 100_000);
        assert!(w.cp.asset(right).is_none(), "fused-away asset destroyed");
        let refused = w.cp.fuse_time(account, fused, tail).unwrap().value;
        assert_eq!(w.cp.asset(refused).unwrap().expiry_time, 10 * HOUR);
    }

    #[test]
    fn split_respects_granularity() {
        let mut w = setup();
        let asset =
            w.service.issue_asset(&mut w.cp, asset_template(Direction::Ingress, 1)).unwrap().value;
        let err = w.cp.split_time(w.service.account, asset, 90).unwrap_err();
        assert!(matches!(err, hummingbird_ledger::ExecError::Contract(_)));
    }

    #[test]
    fn buy_full_listing() {
        let mut w = setup();
        let (l_in, _) = list_pair(&mut w, 1, 2);
        let spec = PurchaseSpec { start: 0, end: 10 * HOUR, bandwidth_kbps: 100_000 };
        let seller_before = w.cp.ledger.balance(w.service.account);
        let bought = w.client.buy(&mut w.cp, w.market, l_in, spec).unwrap().value;
        let asset = w.cp.asset(bought).unwrap();
        assert_eq!(asset.bandwidth_kbps, 100_000);
        // Payment arrived.
        let seller_after = w.cp.ledger.balance(w.service.account);
        assert!(seller_after > seller_before);
        // Listing is gone.
        assert!(w.cp.listings(w.market).iter().all(|(id, _, _)| *id != l_in));
    }

    #[test]
    fn buy_worst_case_split_relists_three_pieces() {
        let mut w = setup();
        let (l_in, _) = list_pair(&mut w, 1, 2);
        // Interior window + fraction of bandwidth: 2 time splits + 1 bw.
        let spec = PurchaseSpec { start: HOUR, end: 2 * HOUR, bandwidth_kbps: 10_000 };
        let rx = w.client.buy(&mut w.cp, w.market, l_in, spec).unwrap();
        assert_eq!(rx.path, ExecPath::Consensus, "market purchase needs consensus");
        let bought = w.cp.asset(rx.value).unwrap();
        assert_eq!(bought.start_time, HOUR);
        assert_eq!(bought.expiry_time, 2 * HOUR);
        assert_eq!(bought.bandwidth_kbps, 10_000);
        // Leftovers re-listed: head, back, bandwidth remainder (+1 egress
        // listing untouched) = 4 listings total.
        let listings = w.cp.listings(w.market);
        assert_eq!(listings.len(), 4);
        let total_listed_ingress: u64 = listings
            .iter()
            .filter(|(_, _, a)| a.direction == Direction::Ingress)
            .map(|(_, _, a)| a.bandwidth_kbps * a.duration())
            .sum();
        // Conservation of bandwidth-time: original 100000*36000 minus
        // bought 10000*3600.
        assert_eq!(total_listed_ingress, 100_000 * 36_000 - 10_000 * 3_600);
    }

    #[test]
    fn buy_rejects_misaligned_and_oversized_requests() {
        let mut w = setup();
        let (l_in, _) = list_pair(&mut w, 1, 2);
        for bad in [
            PurchaseSpec { start: 30, end: HOUR, bandwidth_kbps: 1000 }, // misaligned
            PurchaseSpec { start: 0, end: 11 * HOUR, bandwidth_kbps: 1000 }, // outside
            PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 200_000 }, // too big
            PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 50 },    // below min
            PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 99_950 }, // remainder < min
        ] {
            assert!(
                w.client.buy(&mut w.cp, w.market, l_in, bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn end_to_end_buy_redeem_deliver() {
        let mut w = setup();
        let (l_in, l_eg) = list_pair(&mut w, 1, 2);
        let spec = PurchaseSpec { start: HOUR, end: 2 * HOUR, bandwidth_kbps: 4_000 };
        let mut rng = StdRng::seed_from_u64(7);
        let rx = w
            .client
            .buy_and_redeem_path(&mut w.cp, w.market, &[(l_in, l_eg, spec)], &mut rng)
            .unwrap();
        assert_eq!(rx.value.len(), 1);
        assert_eq!(w.client.pending_count(), 1);

        // AS answers the redeem request (fast path).
        let delivered = w.service.process_requests(&mut w.cp, &mut w.rng).unwrap();
        assert_eq!(delivered.len(), 1);

        // Client collects and decrypts.
        let n = w.client.collect_deliveries(&w.cp).unwrap();
        assert_eq!(n, 1);
        assert_eq!(w.client.pending_count(), 0);
        let granted = &w.client.reservations()[0];
        assert_eq!(granted.res_info.ingress, 1);
        assert_eq!(granted.res_info.egress, 2);
        assert_eq!(granted.res_info.res_start, HOUR as u32);
        assert_eq!(granted.res_info.duration, HOUR as u16);
        // Key matches what the AS's border routers will derive (Eq. 2).
        let expected = w.service.secret_value().derive_key(&granted.res_info);
        assert_eq!(granted.key, expected);
    }

    #[test]
    fn delivery_is_fast_path_and_destroys_assets() {
        let mut w = setup();
        let (l_in, l_eg) = list_pair(&mut w, 1, 2);
        let spec = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 4_000 };
        let mut rng = StdRng::seed_from_u64(8);
        w.client.buy_and_redeem_path(&mut w.cp, w.market, &[(l_in, l_eg, spec)], &mut rng).unwrap();
        let pending = w.cp.pending_requests(w.service.account);
        assert_eq!(pending.len(), 1);
        let (req_id, req) = pending[0].clone();

        w.service.process_requests(&mut w.cp, &mut w.rng).unwrap();
        // Assets wrapped in the request are destroyed (no longer tradable).
        assert!(w.cp.asset(req.ingress_asset).is_none());
        assert!(w.cp.asset(req.egress_asset).is_none());
        assert!(w.cp.ledger.object(req_id).is_none());
    }

    #[test]
    fn atomic_path_purchase_is_all_or_nothing() {
        let mut w = setup();
        let (l_in, l_eg) = list_pair(&mut w, 1, 2);
        let good = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 4_000 };
        // Second hop references a bogus listing: whole tx must fail.
        let bogus = ObjectId([0xee; 32]);
        let mut rng = StdRng::seed_from_u64(9);
        let before_balance = w.cp.ledger.balance(w.client.account);
        let before_listings = w.cp.listings(w.market).len();
        let err = w.client.buy_and_redeem_path(
            &mut w.cp,
            w.market,
            &[(l_in, l_eg, good), (bogus, bogus, good)],
            &mut rng,
        );
        assert!(err.is_err());
        assert_eq!(w.cp.ledger.balance(w.client.account), before_balance);
        assert_eq!(w.cp.listings(w.market).len(), before_listings);
        assert_eq!(w.client.pending_count(), 0, "no dangling ephemeral keys");
    }

    #[test]
    fn res_ids_are_unique_while_overlapping() {
        let mut w = setup();
        let mut rng = StdRng::seed_from_u64(10);
        // Three overlapping purchases on the same interface pair.
        for _ in 0..3 {
            let (l_in, l_eg) = list_pair(&mut w, 1, 2);
            let spec = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 4_000 };
            w.client
                .buy_and_redeem_path(&mut w.cp, w.market, &[(l_in, l_eg, spec)], &mut rng)
                .unwrap();
        }
        w.service.process_requests(&mut w.cp, &mut w.rng).unwrap();
        w.client.collect_deliveries(&w.cp).unwrap();
        let ids: Vec<u32> = w.client.reservations().iter().map(|g| g.res_info.res_id).collect();
        assert_eq!(ids.len(), 3);
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "overlapping reservations must get distinct ResIDs");
    }

    #[test]
    fn expired_res_ids_recycle() {
        let mut w = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let (l_in, l_eg) = list_pair(&mut w, 1, 2);
        let spec = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 4_000 };
        w.client.buy_and_redeem_path(&mut w.cp, w.market, &[(l_in, l_eg, spec)], &mut rng).unwrap();
        w.service.process_requests(&mut w.cp, &mut w.rng).unwrap();
        let first_high = w.service.res_id_high_water(1).unwrap();

        // After expiry, a new reservation can reuse ResID 0.
        w.service.expire_reservations(2 * HOUR);
        let (l_in2, l_eg2) = list_pair(&mut w, 1, 2);
        let spec2 = PurchaseSpec { start: 3 * HOUR, end: 4 * HOUR, bandwidth_kbps: 4_000 };
        w.client
            .buy_and_redeem_path(&mut w.cp, w.market, &[(l_in2, l_eg2, spec2)], &mut rng)
            .unwrap();
        w.service.process_requests(&mut w.cp, &mut w.rng).unwrap();
        assert_eq!(w.service.res_id_high_water(1).unwrap(), first_high);
    }

    #[test]
    fn end_to_end_renewal_fast_path() {
        let mut w = setup();
        let mut rng = StdRng::seed_from_u64(13);
        let (l_in, l_eg) = list_pair(&mut w, 1, 2);
        let spec = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 4_000 };
        w.client.buy_and_redeem_path(&mut w.cp, w.market, &[(l_in, l_eg, spec)], &mut rng).unwrap();
        w.service.process_requests(&mut w.cp, &mut w.rng).unwrap();
        w.client.collect_deliveries(&w.cp).unwrap();
        let first = w.client.reservations()[0].clone();

        // Renew twice: each renewal appends one more window, same ResID.
        let as_acct = w.service.account;
        for generation in 0..2u32 {
            w.client
                .request_renewal(
                    &mut w.cp,
                    as_acct,
                    first.res_info.ingress,
                    first.res_info.res_id,
                    generation,
                    500,
                )
                .unwrap();
            let report = w.service.process_renewals(&mut w.cp, &mut w.rng).unwrap();
            assert_eq!(report.delivered.len(), 1);
            assert_eq!(report.rejected, 0);
            assert_eq!(w.client.collect_renewals(&w.cp).unwrap(), 1);
        }
        let all = w.client.reservations();
        assert_eq!(all.len(), 3);
        for (i, g) in all.iter().enumerate() {
            // Same ResID and hop set; consecutive windows.
            assert_eq!(g.res_info.res_id, first.res_info.res_id);
            assert_eq!(g.res_info.ingress, first.res_info.ingress);
            assert_eq!(g.res_info.egress, first.res_info.egress);
            assert_eq!(g.res_info.res_start as u64, i as u64 * HOUR);
            // Each window's key matches the border-router derivation.
            assert_eq!(g.key, w.service.secret_value().derive_key(&g.res_info));
        }

        // A stale (replayed) generation is rejected and the fee refunded.
        let balance_before = w.cp.ledger.balance(w.client.account);
        let rx = w
            .client
            .request_renewal(
                &mut w.cp,
                as_acct,
                first.res_info.ingress,
                first.res_info.res_id,
                0,
                500,
            )
            .unwrap();
        let report = w.service.process_renewals(&mut w.cp, &mut w.rng).unwrap();
        assert_eq!(report.delivered.len(), 0);
        assert_eq!(report.rejected, 1);
        // Fee came back; only the request's gas was spent.
        let spent = i128::from(balance_before) - i128::from(w.cp.ledger.balance(w.client.account));
        assert_eq!(spent, rx.gas.total_mist(), "fee refunded, only gas spent");
        assert_eq!(w.client.collect_renewals(&w.cp).unwrap(), 0);
    }

    #[test]
    fn reservation_sharing_via_export_import() {
        let mut w = setup();
        let mut rng = StdRng::seed_from_u64(12);
        let (l_in, l_eg) = list_pair(&mut w, 1, 2);
        let spec = PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 4_000 };
        w.client.buy_and_redeem_path(&mut w.cp, w.market, &[(l_in, l_eg, spec)], &mut rng).unwrap();
        w.service.process_requests(&mut w.cp, &mut w.rng).unwrap();
        w.client.collect_deliveries(&w.cp).unwrap();

        // Hand the reservation to a second party (App. C flow).
        let (as_id, info, key) = w.client.export_reservation(0).unwrap();
        let mut server = Client::new(Address::from_label("server"));
        server.import_reservation(as_id, info, key);
        assert_eq!(server.reservations().len(), 1);
        assert_eq!(server.reservations()[0].res_info, info);
    }
}
