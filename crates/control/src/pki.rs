//! AS PKI substitute: trust anchors and possession proofs (paper §3.2).
//!
//! The paper assumes an existing PKI for ASes (RPKI or SCION's CP-PKI) and
//! has each AS prove possession of its certificate key once, during
//! registration with the asset contract. This module models the PKI as a
//! registry of trust-anchored AS public keys plus the challenge format for
//! the possession proof. See DESIGN.md for the substitution rationale.

use hummingbird_crypto::sig::{PublicKey, SecretKey, Signature};
use hummingbird_ledger::Address;
use hummingbird_wire::IsdAs;
use rand::Rng;
use std::collections::HashMap;

/// The registry of AS certificates (ISD-AS → public key).
#[derive(Clone, Debug, Default)]
pub struct TrustAnchors {
    keys: HashMap<IsdAs, PublicKey>,
}

impl TrustAnchors {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the certificate for `as_id`.
    pub fn install(&mut self, as_id: IsdAs, key: PublicKey) {
        self.keys.insert(as_id, key);
    }

    /// Looks up the certified key for `as_id`.
    pub fn key_of(&self, as_id: IsdAs) -> Option<PublicKey> {
        self.keys.get(&as_id).copied()
    }

    /// Verifies a registration possession proof: a signature by the AS
    /// certificate key over the binding of AS identity and on-chain
    /// account.
    pub fn verify_registration(&self, as_id: IsdAs, account: Address, sig: &Signature) -> bool {
        match self.key_of(as_id) {
            Some(pk) => pk.verify(&registration_challenge(as_id, account), sig),
            None => false,
        }
    }
}

/// The message an AS signs to register `account` as its on-chain identity.
pub fn registration_challenge(as_id: IsdAs, account: Address) -> Vec<u8> {
    let mut msg = Vec::with_capacity(64);
    msg.extend_from_slice(b"hummingbird-as-registration-v1");
    msg.extend_from_slice(&as_id.isd.to_be_bytes());
    msg.extend_from_slice(&as_id.asn.to_be_bytes());
    msg.extend_from_slice(&account.0);
    msg
}

/// Produces a registration proof with the AS certificate key.
pub fn sign_registration<R: Rng + ?Sized>(
    key: &SecretKey,
    as_id: IsdAs,
    account: Address,
    rng: &mut R,
) -> Signature {
    key.sign(&registration_challenge(as_id, account), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn registration_proof_verifies() {
        let mut rng = StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&mut rng);
        let as_id = IsdAs::new(1, 42);
        let account = Address::from_label("as-1-42");
        let mut anchors = TrustAnchors::new();
        anchors.install(as_id, sk.public());

        let sig = sign_registration(&sk, as_id, account, &mut rng);
        assert!(anchors.verify_registration(as_id, account, &sig));
    }

    #[test]
    fn proof_is_bound_to_account_and_as() {
        let mut rng = StdRng::seed_from_u64(2);
        let sk = SecretKey::generate(&mut rng);
        let as_id = IsdAs::new(1, 42);
        let account = Address::from_label("good");
        let mut anchors = TrustAnchors::new();
        anchors.install(as_id, sk.public());

        let sig = sign_registration(&sk, as_id, account, &mut rng);
        assert!(!anchors.verify_registration(as_id, Address::from_label("evil"), &sig));
        assert!(!anchors.verify_registration(IsdAs::new(1, 43), account, &sig));
    }

    #[test]
    fn unknown_as_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let sk = SecretKey::generate(&mut rng);
        let as_id = IsdAs::new(9, 9);
        let account = Address::from_label("a");
        let anchors = TrustAnchors::new();
        let sig = sign_registration(&sk, as_id, account, &mut rng);
        assert!(!anchors.verify_registration(as_id, account, &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let honest = SecretKey::generate(&mut rng);
        let attacker = SecretKey::generate(&mut rng);
        let as_id = IsdAs::new(1, 42);
        let account = Address::from_label("attacker");
        let mut anchors = TrustAnchors::new();
        anchors.install(as_id, honest.public());
        // Attacker cannot register someone else's AS with their own key.
        let sig = sign_registration(&attacker, as_id, account, &mut rng);
        assert!(!anchors.verify_registration(as_id, account, &sig));
    }
}
