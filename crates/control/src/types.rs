//! On-chain object types for the Hummingbird control plane (paper §4.2).

use hummingbird_crypto::sealed::SealedBox;
use hummingbird_crypto::sig::PublicKey;
use hummingbird_ledger::codec::{DecodeError, Reader, Writer};
use hummingbird_ledger::{Address, ObjectId};
use hummingbird_wire::IsdAs;

/// Type tag of bandwidth assets.
pub const TAG_ASSET: &str = "hummingbird::asset::BandwidthAsset";
/// Type tag of AS authorization tokens.
pub const TAG_AUTH_TOKEN: &str = "hummingbird::asset::AuthToken";
/// Type tag of redeem requests.
pub const TAG_REDEEM: &str = "hummingbird::asset::RedeemRequest";
/// Type tag of encrypted reservation deliveries.
pub const TAG_DELIVERY: &str = "hummingbird::asset::EncryptedReservation";
/// Type tag of the marketplace shared object.
pub const TAG_MARKET: &str = "hummingbird::market::Marketplace";
/// Type tag of seller registrations.
pub const TAG_SELLER: &str = "hummingbird::market::Seller";
/// Type tag of listings.
pub const TAG_LISTING: &str = "hummingbird::market::Listing";
/// Type tag of the simulated Sui gas coin mutated by every transaction.
pub const TAG_GAS_COIN: &str = "sui::coin::Coin<SUI>";

/// Whether an asset reserves an interface as ingress or egress.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The interface is the reservation's ingress.
    Ingress,
    /// The interface is the reservation's egress.
    Egress,
}

impl Direction {
    fn encode(self) -> u8 {
        match self {
            Direction::Ingress => 0,
            Direction::Egress => 1,
        }
    }

    fn decode(v: u8) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(Direction::Ingress),
            1 => Ok(Direction::Egress),
            _ => Err(DecodeError),
        }
    }
}

/// A tradable bandwidth asset (§4.2, "Asset Representation").
///
/// Each asset is a voucher for reserved bandwidth on *one* interface of the
/// issuing AS, in one direction, over one time window. A matching
/// ingress/egress pair is redeemed for a data-plane reservation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BandwidthAsset {
    /// The AS offering the reservation (set during issuance from the
    /// issuer's auth token).
    pub as_id: IsdAs,
    /// Reserved bandwidth in kbps.
    pub bandwidth_kbps: u64,
    /// Start of validity (Unix seconds).
    pub start_time: u64,
    /// End of validity (Unix seconds, exclusive).
    pub expiry_time: u64,
    /// Interface ID at the issuing AS.
    pub interface: u16,
    /// Ingress or egress use of that interface.
    pub direction: Direction,
    /// Minimum duration quantum for splits, seconds.
    pub time_granularity: u64,
    /// Minimum bandwidth of any split piece, kbps.
    pub min_bandwidth_kbps: u64,
}

impl BandwidthAsset {
    /// Duration of the asset in seconds.
    pub fn duration(&self) -> u64 {
        self.expiry_time - self.start_time
    }

    /// Validates the asset invariants enforced at issuance.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.expiry_time <= self.start_time {
            return Err("expiry must be after start".into());
        }
        if self.time_granularity == 0 {
            return Err("time granularity must be positive".into());
        }
        if !self.duration().is_multiple_of(self.time_granularity) {
            return Err("duration must be a multiple of the time granularity".into());
        }
        if self.min_bandwidth_kbps == 0 {
            return Err("minimum bandwidth must be positive".into());
        }
        if self.bandwidth_kbps < self.min_bandwidth_kbps {
            return Err("bandwidth below the asset's minimum".into());
        }
        Ok(())
    }

    /// Whether two assets are redeemable as an ingress/egress pair:
    /// same AS, same window, same bandwidth, opposite directions (§4.2,
    /// "Asset Redemption").
    pub fn matches_for_redeem(&self, other: &BandwidthAsset) -> bool {
        self.as_id == other.as_id
            && self.bandwidth_kbps == other.bandwidth_kbps
            && self.start_time == other.start_time
            && self.expiry_time == other.expiry_time
            && self.direction != other.direction
    }

    /// Serializes to the on-chain byte representation. A short display
    /// string pads the object to a size comparable to the Move/BCS object
    /// the paper's contracts store, so the storage-gas numbers land in the
    /// same regime as Table 2.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(self.as_id.isd);
        w.u64(self.as_id.asn);
        w.u64(self.bandwidth_kbps);
        w.u64(self.start_time);
        w.u64(self.expiry_time);
        w.u16(self.interface);
        w.u8(self.direction.encode());
        w.u64(self.time_granularity);
        w.u64(self.min_bandwidth_kbps);
        let display = format!(
            "Hummingbird bandwidth reservation voucher: AS {} if {} {:?} {} kbps [{}, {})",
            self.as_id,
            self.interface,
            self.direction,
            self.bandwidth_kbps,
            self.start_time,
            self.expiry_time
        );
        w.var_bytes(display.as_bytes());
        w.finish()
    }

    /// Parses the on-chain byte representation.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let asset = BandwidthAsset {
            as_id: IsdAs::new(r.u16()?, r.u64()?),
            bandwidth_kbps: r.u64()?,
            start_time: r.u64()?,
            expiry_time: r.u64()?,
            interface: r.u16()?,
            direction: Direction::decode(r.u8()?)?,
            time_granularity: r.u64()?,
            min_bandwidth_kbps: r.u64()?,
        };
        let _display = r.var_bytes()?;
        r.finish()?;
        Ok(asset)
    }
}

/// Authorization token minted at AS registration (§4.2, "AS Registration").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthToken {
    /// The AS this token authorizes to issue assets.
    pub as_id: IsdAs,
}

impl AuthToken {
    /// Serializes the token.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(self.as_id.isd);
        w.u64(self.as_id.asn);
        w.finish()
    }

    /// Parses the token.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let t = AuthToken { as_id: IsdAs::new(r.u16()?, r.u64()?) };
        r.finish()?;
        Ok(t)
    }
}

/// A redeem request wrapping an ingress/egress asset pair plus the host's
/// ephemeral public key (§4.2 steps ❺-❻).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RedeemRequest {
    /// Who redeemed (receives the encrypted reservation).
    pub requester: Address,
    /// Ephemeral public key for sealing the response.
    pub ephemeral_pk: PublicKey,
    /// Wrapped ingress asset object.
    pub ingress_asset: ObjectId,
    /// Wrapped egress asset object.
    pub egress_asset: ObjectId,
    /// Copy of the redeemed reservation parameters (AS, window, bandwidth,
    /// interfaces) so the AS can serve the request without extra reads.
    pub asset: BandwidthAsset,
    /// Egress interface (the `asset` field holds the ingress view).
    pub egress_interface: u16,
}

impl RedeemRequest {
    /// Serializes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.requester.0);
        w.bytes(&self.ephemeral_pk.to_bytes());
        w.bytes(&self.ingress_asset.0);
        w.bytes(&self.egress_asset.0);
        w.var_bytes(&self.asset.encode());
        w.u16(self.egress_interface);
        w.finish()
    }

    /// Parses the request.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let requester = Address(r.array::<32>()?);
        let pk_bytes = r.array::<16>()?;
        let ephemeral_pk = PublicKey::from_bytes(&pk_bytes).ok_or(DecodeError)?;
        let ingress_asset = ObjectId(r.array::<32>()?);
        let egress_asset = ObjectId(r.array::<32>()?);
        let asset = BandwidthAsset::decode(&r.var_bytes()?)?;
        let egress_interface = r.u16()?;
        r.finish()?;
        Ok(RedeemRequest {
            requester,
            ephemeral_pk,
            ingress_asset,
            egress_asset,
            asset,
            egress_interface,
        })
    }
}

/// The sealed reservation delivery (§4.2 steps ❼-❽).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncryptedReservation {
    /// The issuing AS.
    pub as_id: IsdAs,
    /// The redeem request this delivery answers. Public information (the
    /// request is on chain), but it lets the recipient pick the matching
    /// ephemeral key directly instead of trial-decrypting against every
    /// in-flight request.
    pub request: ObjectId,
    /// Sealed `(ResInfo, A_K)` payload.
    pub sealed: SealedBox,
}

impl EncryptedReservation {
    /// Serializes the delivery.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(self.as_id.isd);
        w.u64(self.as_id.asn);
        w.bytes(&self.request.0);
        w.bytes(&self.sealed.ephemeral.to_bytes());
        w.bytes(&self.sealed.nonce);
        w.var_bytes(&self.sealed.ciphertext);
        w.bytes(&self.sealed.tag);
        w.finish()
    }

    /// Parses the delivery.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let as_id = IsdAs::new(r.u16()?, r.u64()?);
        let request = ObjectId(r.array::<32>()?);
        let eph = PublicKey::from_bytes(&r.array::<16>()?).ok_or(DecodeError)?;
        let nonce = r.array::<16>()?;
        let ciphertext = r.var_bytes()?;
        let tag = r.array::<16>()?;
        r.finish()?;
        Ok(EncryptedReservation {
            as_id,
            request,
            sealed: SealedBox { ephemeral: eph, nonce, ciphertext, tag },
        })
    }
}

/// A marketplace listing: an escrowed asset plus its ask price.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Listing {
    /// Seller who receives the payment.
    pub seller: Address,
    /// The escrowed asset object.
    pub asset: ObjectId,
    /// Price in MIST per kbps·second of bandwidth-time.
    pub price_per_kbps_sec: u64,
}

impl Listing {
    /// Serializes the listing.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.seller.0);
        w.bytes(&self.asset.0);
        w.u64(self.price_per_kbps_sec);
        w.finish()
    }

    /// Parses the listing.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let l = Listing {
            seller: Address(r.array::<32>()?),
            asset: ObjectId(r.array::<32>()?),
            price_per_kbps_sec: r.u64()?,
        };
        r.finish()?;
        Ok(l)
    }

    /// Price of a `[start, end)` window at `bw` kbps.
    pub fn price(&self, bw_kbps: u64, start: u64, end: u64) -> u64 {
        self.price_per_kbps_sec.saturating_mul(bw_kbps).saturating_mul(end.saturating_sub(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hummingbird_crypto::sig::SecretKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn sample_asset(dir: Direction) -> BandwidthAsset {
        BandwidthAsset {
            as_id: IsdAs::new(1, 0xff00_0000_0110),
            bandwidth_kbps: 10_000,
            start_time: 1000,
            expiry_time: 4600,
            interface: 3,
            direction: dir,
            time_granularity: 60,
            min_bandwidth_kbps: 100,
        }
    }

    #[test]
    fn asset_roundtrip() {
        let a = sample_asset(Direction::Ingress);
        assert_eq!(BandwidthAsset::decode(&a.encode()).unwrap(), a);
    }

    #[test]
    fn asset_size_is_in_the_sui_regime() {
        // Storage pricing depends on size; keep it in the 150-400 B band so
        // Table 2 magnitudes hold.
        let len = sample_asset(Direction::Egress).encode().len();
        assert!((150..400).contains(&len), "asset encodes to {len} bytes");
    }

    #[test]
    fn invariants_catch_bad_assets() {
        let good = sample_asset(Direction::Ingress);
        assert!(good.check_invariants().is_ok());
        let mut bad = good.clone();
        bad.expiry_time = bad.start_time;
        assert!(bad.check_invariants().is_err());
        let mut bad = good.clone();
        bad.expiry_time = bad.start_time + 61; // not a granularity multiple
        assert!(bad.check_invariants().is_err());
        let mut bad = good.clone();
        bad.bandwidth_kbps = 50; // below min
        assert!(bad.check_invariants().is_err());
        let mut bad = good;
        bad.time_granularity = 0;
        assert!(bad.check_invariants().is_err());
    }

    #[test]
    fn redeem_matching_requires_opposite_directions() {
        let ing = sample_asset(Direction::Ingress);
        let eg = sample_asset(Direction::Egress);
        assert!(ing.matches_for_redeem(&eg));
        assert!(!ing.matches_for_redeem(&ing));
        let mut eg2 = eg.clone();
        eg2.bandwidth_kbps += 1;
        assert!(!ing.matches_for_redeem(&eg2));
        let mut eg3 = eg;
        eg3.start_time += 1;
        assert!(!ing.matches_for_redeem(&eg3));
    }

    #[test]
    fn redeem_request_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let pk = SecretKey::generate(&mut rng).public();
        let req = RedeemRequest {
            requester: Address::from_label("host"),
            ephemeral_pk: pk,
            ingress_asset: ObjectId([1u8; 32]),
            egress_asset: ObjectId([2u8; 32]),
            asset: sample_asset(Direction::Ingress),
            egress_interface: 9,
        };
        assert_eq!(RedeemRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn delivery_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let sk = SecretKey::generate(&mut rng);
        let sealed = hummingbird_crypto::sealed::seal(&sk.public(), b"payload", &mut rng);
        let d =
            EncryptedReservation { as_id: IsdAs::new(4, 44), request: ObjectId([9; 32]), sealed };
        assert_eq!(EncryptedReservation::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn listing_roundtrip_and_pricing() {
        let l = Listing {
            seller: Address::from_label("as-1"),
            asset: ObjectId([9u8; 32]),
            price_per_kbps_sec: 3,
        };
        assert_eq!(Listing::decode(&l.encode()).unwrap(), l);
        // 100 kbps for 60 s at 3 MIST/kbps-s = 18 000 MIST.
        assert_eq!(l.price(100, 40, 100), 18_000);
    }

    #[test]
    fn auth_token_roundtrip() {
        let t = AuthToken { as_id: IsdAs::new(7, 70) };
        assert_eq!(AuthToken::decode(&t.encode()).unwrap(), t);
    }
}
