//! The marketplace contract and the atomic buy-and-redeem flow (§4.2).
//!
//! The marketplace is a *shared* object — every purchase therefore goes
//! through consensus (paper §6.1), while redeem deliveries ride the fast
//! path. Listed assets are escrowed as children of the marketplace object,
//! and buying a fraction of a listing splits the asset and re-lists the
//! unsold pieces, exactly the worst case the paper benchmarks in Table 1.

use crate::plane::{
    read_asset, redeem_inner, split_bandwidth_inner, split_time_inner, ControlPlane, CpResult,
};
use crate::types::*;
use hummingbird_crypto::sig::PublicKey;
use hummingbird_ledger::{Address, ExecError, ObjectId, Owner, TxContext};
use hummingbird_wire::IsdAs;
use std::collections::HashMap;

/// What a buyer wants out of a listing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PurchaseSpec {
    /// Desired start (Unix seconds).
    pub start: u64,
    /// Desired end (exclusive).
    pub end: u64,
    /// Desired bandwidth, kbps.
    pub bandwidth_kbps: u64,
}

/// One hop of an atomic path purchase: matching ingress and egress
/// listings plus the desired dimensions and the ephemeral key for the
/// redeem request.
#[derive(Clone, Debug)]
pub struct HopPurchase {
    /// Listing for the ingress-direction asset.
    pub ingress_listing: ObjectId,
    /// Listing for the egress-direction asset.
    pub egress_listing: ObjectId,
    /// Desired window and bandwidth (applied to both assets).
    pub spec: PurchaseSpec,
    /// Ephemeral public key sealed into this hop's redeem request.
    pub ephemeral_pk: PublicKey,
}

impl ControlPlane {
    /// Creates a marketplace (a shared object anyone can trade on).
    pub fn create_marketplace(&mut self, sender: Address) -> CpResult<ObjectId> {
        self.exec(sender, |ctx| {
            // Small config payload: protocol version + fee placeholder.
            Ok(ctx.create(Owner::Shared, TAG_MARKET, vec![1, 0, 0, 0, 0, 0, 0, 0]))
        })
    }

    /// Registers `sender` as a seller on `market`.
    pub fn register_seller(&mut self, sender: Address, market: ObjectId) -> CpResult<ObjectId> {
        self.exec(sender, move |ctx| {
            ctx.read_ref(market, TAG_MARKET)?;
            let mut data = Vec::with_capacity(32);
            data.extend_from_slice(&ctx.sender().0);
            Ok(ctx.create(Owner::Object(market), TAG_SELLER, data))
        })
    }

    /// Lists an asset for sale: the asset is escrowed under the market and
    /// a listing child object records seller and ask price.
    pub fn create_listing(
        &mut self,
        sender: Address,
        market: ObjectId,
        asset_id: ObjectId,
        price_per_kbps_sec: u64,
    ) -> CpResult<ObjectId> {
        self.exec(sender, move |ctx| {
            ctx.read_ref(market, TAG_MARKET)?;
            // Reading the asset checks the sender owns it.
            read_asset(ctx, asset_id)?;
            ctx.transfer(asset_id, Owner::Object(market))?;
            let listing = Listing { seller: ctx.sender(), asset: asset_id, price_per_kbps_sec };
            Ok(ctx.create(Owner::Object(market), TAG_LISTING, listing.encode()))
        })
    }

    /// Buys (a fraction of) a listing. Pays the seller, splits the asset as
    /// needed and re-lists the unsold pieces. Returns the bought asset.
    pub fn buy(
        &mut self,
        sender: Address,
        market: ObjectId,
        listing_id: ObjectId,
        spec: PurchaseSpec,
    ) -> CpResult<ObjectId> {
        self.exec(sender, move |ctx| buy_inner(ctx, market, listing_id, spec))
    }

    /// The paper's flagship control-plane operation: atomically buys and
    /// redeems reservations for a whole path in **one transaction**
    /// (Table 1, Fig. 4). If any hop fails — no bandwidth, wrong window,
    /// insufficient funds — the entire transaction aborts and no money or
    /// assets move (§4.2, "Atomic End-to-End Guarantees").
    ///
    /// Returns one redeem-request object per hop.
    pub fn buy_and_redeem_path(
        &mut self,
        sender: Address,
        market: ObjectId,
        hops: &[HopPurchase],
    ) -> CpResult<Vec<ObjectId>> {
        let as_accounts = self.as_accounts_snapshot();
        let hops = hops.to_vec();
        self.exec(sender, move |ctx| {
            let mut requests = Vec::with_capacity(hops.len());
            for hop in &hops {
                let ingress = buy_inner(ctx, market, hop.ingress_listing, hop.spec)?;
                let egress = buy_inner(ctx, market, hop.egress_listing, hop.spec)?;
                let request = redeem_inner(ctx, &as_accounts, ingress, egress, hop.ephemeral_pk)?;
                requests.push(request);
            }
            Ok(requests)
        })
    }

    /// All listings on `market`, joined with their escrowed assets
    /// (public state: how clients browse the market), in object-ID order.
    /// Served from the ledger's owner/type index — O(listings of this
    /// market), not O(total objects).
    pub fn listings(&self, market: ObjectId) -> Vec<(ObjectId, Listing, BandwidthAsset)> {
        self.ledger
            .objects_owned_by(Owner::Object(market), TAG_LISTING)
            .filter_map(|e| {
                let listing = Listing::decode(&e.data).ok()?;
                let asset = self.asset(listing.asset)?;
                Some((e.meta.id, listing, asset))
            })
            .collect()
    }

    pub(crate) fn as_accounts_snapshot(&self) -> HashMap<IsdAs, Address> {
        self.as_accounts.clone()
    }

    /// All registered ASes and their accounts (the registry maintained by
    /// [`ControlPlane::register_as`]), sorted by AS identifier.
    pub fn registered_ases(&self) -> Vec<(IsdAs, Address)> {
        let mut out: Vec<(IsdAs, Address)> =
            self.as_accounts.iter().map(|(as_id, addr)| (*as_id, *addr)).collect();
        out.sort_by_key(|(as_id, _)| *as_id);
        out
    }
}

/// Contract logic of a (possibly fractional) purchase, usable standalone or
/// inside an atomic path transaction. Returns the bought asset object.
pub(crate) fn buy_inner(
    ctx: &mut TxContext,
    market: ObjectId,
    listing_id: ObjectId,
    spec: PurchaseSpec,
) -> Result<ObjectId, ExecError> {
    ctx.read_ref(market, TAG_MARKET)?;
    let listing = Listing::decode(ctx.read_ref(listing_id, TAG_LISTING)?)?;
    let asset = read_asset(ctx, listing.asset)?;

    // Validate the requested dimensions.
    if spec.start >= spec.end {
        return Err(ExecError::Contract("empty purchase window".into()));
    }
    if spec.start < asset.start_time || spec.end > asset.expiry_time {
        return Err(ExecError::Contract("purchase window outside the asset".into()));
    }
    if !(spec.start - asset.start_time).is_multiple_of(asset.time_granularity)
        || !(asset.expiry_time - spec.end).is_multiple_of(asset.time_granularity)
    {
        return Err(ExecError::Contract("purchase window violates the time granularity".into()));
    }
    if spec.bandwidth_kbps < asset.min_bandwidth_kbps {
        return Err(ExecError::Contract("purchase below the minimum bandwidth".into()));
    }
    if spec.bandwidth_kbps > asset.bandwidth_kbps {
        return Err(ExecError::Contract("purchase exceeds the listed bandwidth".into()));
    }
    let bw_rest = asset.bandwidth_kbps - spec.bandwidth_kbps;
    if bw_rest != 0 && bw_rest < asset.min_bandwidth_kbps {
        return Err(ExecError::Contract(
            "bandwidth remainder would violate the minimum bandwidth".into(),
        ));
    }

    // Pay the seller.
    let price = listing.price(spec.bandwidth_kbps, spec.start, spec.end);
    ctx.pay(listing.seller, price);

    let escrow = Owner::Object(market);
    let relist = |ctx: &mut TxContext, piece: ObjectId| {
        let new_listing = Listing {
            seller: listing.seller,
            asset: piece,
            price_per_kbps_sec: listing.price_per_kbps_sec,
        };
        ctx.create(escrow, TAG_LISTING, new_listing.encode());
    };

    // Head split: the original object keeps the head leftover and remains
    // referenced by the original listing; the tail becomes the working
    // object the purchase continues on.
    let (working, original_listing_consumed) = if spec.start > asset.start_time {
        let tail = split_time_inner(ctx, listing.asset, spec.start, escrow)?;
        (tail, false)
    } else {
        (listing.asset, true)
    };

    // Back split: working keeps [spec.start, spec.end); re-list the tail.
    let current = read_asset(ctx, working)?;
    if spec.end < current.expiry_time {
        let back = split_time_inner(ctx, working, spec.end, escrow)?;
        relist(ctx, back);
    }

    // Bandwidth split: working keeps the bought bandwidth.
    let current = read_asset(ctx, working)?;
    if spec.bandwidth_kbps < current.bandwidth_kbps {
        let rest = split_bandwidth_inner(ctx, working, spec.bandwidth_kbps, escrow)?;
        relist(ctx, rest);
    }

    if original_listing_consumed {
        ctx.delete(listing_id)?;
    }
    ctx.transfer(working, Owner::Address(ctx.sender()))?;
    Ok(working)
}
