//! The control-plane facade: a ledger plus the asset-contract entry points
//! (paper §4.2). Market functions live in [`crate::market`].
//!
//! Every public method is one on-chain transaction. Like every real Sui
//! transaction, each call also mutates the sender's gas coin object — this
//! matters for gas accounting because the coin mutation contributes a
//! storage fee and a rebate to every call (visible throughout Table 2).

use crate::pki::TrustAnchors;
use crate::types::*;
use hummingbird_crypto::sig::{PublicKey, Signature};
use hummingbird_ledger::{
    Address, ExecError, Ledger, ObjectId, Owner, TxContext, TxReceipt, MIST_PER_SUI,
};
use hummingbird_wire::IsdAs;
use std::collections::HashMap;

/// Result alias for contract calls.
pub type CpResult<T> = Result<TxReceipt<T>, ExecError>;

/// Payload size of the simulated gas coin object. With the ~100 B object
/// envelope this gives the ~0.0025 SUI per-tx storage fee / rebate cycle
/// visible in the paper's Table 2.
const GAS_COIN_PAYLOAD: usize = 230;

/// The Hummingbird control plane: ledger, PKI anchors, and the contract
/// entry points.
pub struct ControlPlane {
    /// The underlying object ledger.
    pub ledger: Ledger,
    /// Trust anchors for AS registration proofs.
    pub anchors: TrustAnchors,
    gas_coins: HashMap<Address, ObjectId>,
    pub(crate) as_accounts: HashMap<IsdAs, Address>,
}

impl Default for ControlPlane {
    fn default() -> Self {
        Self::new(TrustAnchors::new())
    }
}

impl ControlPlane {
    /// Creates a control plane over a fresh ledger.
    pub fn new(anchors: TrustAnchors) -> Self {
        ControlPlane {
            ledger: Ledger::new(),
            anchors,
            gas_coins: HashMap::new(),
            as_accounts: HashMap::new(),
        }
    }

    /// Funds an account with `sui` whole SUI (testnet faucet).
    pub fn faucet(&mut self, addr: Address, sui: u64) {
        self.ledger.mint(addr, sui * MIST_PER_SUI);
    }

    /// On-chain account registered for `as_id`, if any.
    pub fn as_account(&self, as_id: IsdAs) -> Option<Address> {
        self.as_accounts.get(&as_id).copied()
    }

    /// Executes `f` as a transaction that, like every Sui transaction,
    /// additionally mutates the sender's gas coin object.
    pub fn exec<T>(
        &mut self,
        sender: Address,
        f: impl FnOnce(&mut TxContext) -> Result<T, ExecError>,
    ) -> CpResult<T> {
        let known_coin = self.gas_coins.get(&sender).copied();
        let receipt = self.ledger.execute(sender, |ctx| {
            let coin = match known_coin {
                Some(id) => {
                    // Version-bump the coin without cloning its payload
                    // through contract code; `touch` charges the same gas
                    // as the read+write it replaces.
                    ctx.touch(id, TAG_GAS_COIN)?;
                    id
                }
                None => {
                    ctx.create(Owner::Address(sender), TAG_GAS_COIN, vec![0u8; GAS_COIN_PAYLOAD])
                }
            };
            let value = f(ctx)?;
            Ok((value, coin))
        })?;
        self.gas_coins.insert(sender, receipt.value.1);
        let TxReceipt { value: (value, _), gas, path, digest } = receipt;
        Ok(TxReceipt { value, gas, path, digest })
    }

    // ------------------------------------------------------------------
    // Asset contract
    // ------------------------------------------------------------------

    /// Registers `sender` as the on-chain account of `as_id`, verifying the
    /// PKI possession proof, and mints the authorization token (§4.2,
    /// "AS Registration").
    pub fn register_as(
        &mut self,
        sender: Address,
        as_id: IsdAs,
        proof: &Signature,
    ) -> CpResult<ObjectId> {
        if !self.anchors.verify_registration(as_id, sender, proof) {
            return Err(ExecError::Contract(format!(
                "registration proof for {as_id} did not verify"
            )));
        }
        let receipt = self.exec(sender, |ctx| {
            ctx.charge(50); // signature verification is the expensive part
            let token = AuthToken { as_id };
            Ok(ctx.create(Owner::Address(sender), TAG_AUTH_TOKEN, token.encode()))
        })?;
        self.as_accounts.insert(as_id, sender);
        Ok(receipt)
    }

    /// Issues a bandwidth asset. Only the holder of the auth token for
    /// `asset.as_id` can issue, and the asset's AS identifier is forced to
    /// match the token.
    pub fn issue(
        &mut self,
        sender: Address,
        token_id: ObjectId,
        asset: BandwidthAsset,
    ) -> CpResult<ObjectId> {
        self.exec(sender, move |ctx| {
            let token = AuthToken::decode(ctx.read_ref(token_id, TAG_AUTH_TOKEN)?)?;
            if token.as_id != asset.as_id {
                return Err(ExecError::Contract(
                    "auth token does not match asset AS identifier".into(),
                ));
            }
            asset.check_invariants().map_err(ExecError::Contract)?;
            Ok(ctx.create(Owner::Address(ctx.sender()), TAG_ASSET, asset.encode()))
        })
    }

    /// Splits an asset in the time dimension at `split_at`. The original
    /// object keeps `[start, split_at)`; a new object holds
    /// `[split_at, expiry)`. Returns `(original, new)`.
    pub fn split_time(
        &mut self,
        sender: Address,
        asset_id: ObjectId,
        split_at: u64,
    ) -> CpResult<(ObjectId, ObjectId)> {
        self.exec(sender, move |ctx| {
            let owner = Owner::Address(ctx.sender());
            let new_id = split_time_inner(ctx, asset_id, split_at, owner)?;
            Ok((asset_id, new_id))
        })
    }

    /// Splits an asset in the bandwidth dimension. The original keeps
    /// `keep_kbps`; a new object receives the rest. Returns
    /// `(original, new)`.
    pub fn split_bandwidth(
        &mut self,
        sender: Address,
        asset_id: ObjectId,
        keep_kbps: u64,
    ) -> CpResult<(ObjectId, ObjectId)> {
        self.exec(sender, move |ctx| {
            let owner = Owner::Address(ctx.sender());
            let new_id = split_bandwidth_inner(ctx, asset_id, keep_kbps, owner)?;
            Ok((asset_id, new_id))
        })
    }

    /// Fuses two time-adjacent, otherwise identical assets back into one
    /// (the `first` object absorbs `second`, which is destroyed).
    pub fn fuse_time(
        &mut self,
        sender: Address,
        first: ObjectId,
        second: ObjectId,
    ) -> CpResult<ObjectId> {
        self.exec(sender, move |ctx| {
            let mut a = read_asset(ctx, first)?;
            let b = read_asset(ctx, second)?;
            let compatible = a.as_id == b.as_id
                && a.interface == b.interface
                && a.direction == b.direction
                && a.bandwidth_kbps == b.bandwidth_kbps
                && a.time_granularity == b.time_granularity
                && a.min_bandwidth_kbps == b.min_bandwidth_kbps
                && a.expiry_time == b.start_time;
            if !compatible {
                return Err(ExecError::Contract("assets are not time-adjacent twins".into()));
            }
            a.expiry_time = b.expiry_time;
            ctx.write(first, TAG_ASSET, a.encode())?;
            ctx.delete(second)?;
            Ok(first)
        })
    }

    /// Fuses two same-window assets, summing their bandwidth.
    pub fn fuse_bandwidth(
        &mut self,
        sender: Address,
        first: ObjectId,
        second: ObjectId,
    ) -> CpResult<ObjectId> {
        self.exec(sender, move |ctx| {
            let mut a = read_asset(ctx, first)?;
            let b = read_asset(ctx, second)?;
            let compatible = a.as_id == b.as_id
                && a.interface == b.interface
                && a.direction == b.direction
                && a.start_time == b.start_time
                && a.expiry_time == b.expiry_time
                && a.time_granularity == b.time_granularity
                && a.min_bandwidth_kbps == b.min_bandwidth_kbps;
            if !compatible {
                return Err(ExecError::Contract("assets are not same-window twins".into()));
            }
            a.bandwidth_kbps += b.bandwidth_kbps;
            ctx.write(first, TAG_ASSET, a.encode())?;
            ctx.delete(second)?;
            Ok(first)
        })
    }

    /// Transfers an asset (free trade outside any market).
    pub fn transfer_asset(
        &mut self,
        sender: Address,
        asset_id: ObjectId,
        to: Address,
    ) -> CpResult<()> {
        self.exec(sender, move |ctx| ctx.transfer(asset_id, Owner::Address(to)))
    }

    /// Redeems a matching ingress/egress asset pair: wraps them, together
    /// with the host's ephemeral public key, into a redeem request owned by
    /// the issuing AS (§4.2, steps ❺-❻). Returns the request object.
    pub fn redeem(
        &mut self,
        sender: Address,
        ingress_id: ObjectId,
        egress_id: ObjectId,
        ephemeral_pk: PublicKey,
    ) -> CpResult<ObjectId> {
        let as_accounts = self.as_accounts.clone();
        self.exec(sender, move |ctx| {
            redeem_inner(ctx, &as_accounts, ingress_id, egress_id, ephemeral_pk)
        })
    }

    /// AS-side: answers a redeem request with a sealed reservation,
    /// destroying the request and the wrapped bandwidth assets (§4.2,
    /// steps ❼-❽).
    pub fn deliver_reservation(
        &mut self,
        sender: Address,
        request_id: ObjectId,
        delivery: EncryptedReservation,
    ) -> CpResult<ObjectId> {
        self.exec(sender, move |ctx| {
            if delivery.request != request_id {
                return Err(ExecError::Contract("delivery answers a different request".into()));
            }
            let request = RedeemRequest::decode(ctx.read_ref(request_id, TAG_REDEEM)?)?;
            // Destroy the wrapped assets: they can no longer be traded.
            ctx.delete(request.ingress_asset)?;
            ctx.delete(request.egress_asset)?;
            ctx.delete(request_id)?;
            Ok(ctx.create(Owner::Address(request.requester), TAG_DELIVERY, delivery.encode()))
        })
    }

    /// Deletes a batch of consumed objects the sender owns, collecting
    /// their storage rebates in one transaction. Deliveries and renewal
    /// deliveries are dead weight once their payload has been decrypted;
    /// reclaiming them keeps the committed object store — and every
    /// hash-map probe against it — small at millions of reservations.
    /// Ownership is enforced per object by the ledger: a sender cannot
    /// reclaim objects it cannot use.
    pub fn reclaim(&mut self, sender: Address, ids: Vec<ObjectId>) -> CpResult<usize> {
        self.exec(sender, move |ctx| {
            for &id in &ids {
                ctx.delete(id)?;
            }
            Ok(ids.len())
        })
    }

    // ------------------------------------------------------------------
    // Chain inspection (public state; no gas)
    // ------------------------------------------------------------------

    /// All pending redeem requests owned by `as_account`, in object-ID
    /// order. Served from the ledger's owner/type index — O(requests of
    /// this AS), not O(total objects).
    pub fn pending_requests(&self, as_account: Address) -> Vec<(ObjectId, RedeemRequest)> {
        self.ledger
            .objects_owned_by(Owner::Address(as_account), TAG_REDEEM)
            .filter_map(|e| RedeemRequest::decode(&e.data).ok().map(|r| (e.meta.id, r)))
            .collect()
    }

    /// All encrypted reservation deliveries owned by `addr`, in object-ID
    /// order (index-backed, like [`Self::pending_requests`]).
    pub fn deliveries_for(&self, addr: Address) -> Vec<(ObjectId, EncryptedReservation)> {
        self.ledger
            .objects_owned_by(Owner::Address(addr), TAG_DELIVERY)
            .filter_map(|e| EncryptedReservation::decode(&e.data).ok().map(|d| (e.meta.id, d)))
            .collect()
    }

    /// Reads a committed asset by ID (public chain state).
    pub fn asset(&self, id: ObjectId) -> Option<BandwidthAsset> {
        let entry = self.ledger.object(id)?;
        if entry.meta.type_tag != TAG_ASSET {
            return None;
        }
        BandwidthAsset::decode(&entry.data).ok()
    }
}

// ----------------------------------------------------------------------
// Inner contract logic shared with the market contract
// ----------------------------------------------------------------------

/// Reads and decodes a bandwidth asset (borrowed read: the payload is
/// decoded in place, never cloned).
pub(crate) fn read_asset(ctx: &mut TxContext, id: ObjectId) -> Result<BandwidthAsset, ExecError> {
    Ok(BandwidthAsset::decode(ctx.read_ref(id, TAG_ASSET)?)?)
}

/// Splits `asset_id` in time at `split_at`; the new `[split_at, expiry)`
/// piece is created with `new_owner`. Returns the new object's ID.
pub(crate) fn split_time_inner(
    ctx: &mut TxContext,
    asset_id: ObjectId,
    split_at: u64,
    new_owner: Owner,
) -> Result<ObjectId, ExecError> {
    let mut asset = read_asset(ctx, asset_id)?;
    if split_at <= asset.start_time || split_at >= asset.expiry_time {
        return Err(ExecError::Contract("split point outside the asset window".into()));
    }
    if !(split_at - asset.start_time).is_multiple_of(asset.time_granularity) {
        return Err(ExecError::Contract("split point violates the time granularity".into()));
    }
    let mut tail = asset.clone();
    tail.start_time = split_at;
    asset.expiry_time = split_at;
    debug_assert!(asset.check_invariants().is_ok());
    debug_assert!(tail.check_invariants().is_ok());
    ctx.write(asset_id, TAG_ASSET, asset.encode())?;
    Ok(ctx.create(new_owner, TAG_ASSET, tail.encode()))
}

/// Splits `asset_id` in bandwidth: the original keeps `keep_kbps`, the new
/// piece (owned by `new_owner`) gets the remainder.
pub(crate) fn split_bandwidth_inner(
    ctx: &mut TxContext,
    asset_id: ObjectId,
    keep_kbps: u64,
    new_owner: Owner,
) -> Result<ObjectId, ExecError> {
    let mut asset = read_asset(ctx, asset_id)?;
    if keep_kbps >= asset.bandwidth_kbps {
        return Err(ExecError::Contract("bandwidth split must shrink the asset".into()));
    }
    let rest = asset.bandwidth_kbps - keep_kbps;
    if keep_kbps < asset.min_bandwidth_kbps || rest < asset.min_bandwidth_kbps {
        return Err(ExecError::Contract("bandwidth split violates the minimum bandwidth".into()));
    }
    let mut tail = asset.clone();
    tail.bandwidth_kbps = rest;
    asset.bandwidth_kbps = keep_kbps;
    ctx.write(asset_id, TAG_ASSET, asset.encode())?;
    Ok(ctx.create(new_owner, TAG_ASSET, tail.encode()))
}

/// Redeem logic: validates the pair, wraps assets into a request owned by
/// the issuing AS.
pub(crate) fn redeem_inner(
    ctx: &mut TxContext,
    as_accounts: &HashMap<IsdAs, Address>,
    ingress_id: ObjectId,
    egress_id: ObjectId,
    ephemeral_pk: PublicKey,
) -> Result<ObjectId, ExecError> {
    let ingress = read_asset(ctx, ingress_id)?;
    let egress = read_asset(ctx, egress_id)?;
    if ingress.direction != Direction::Ingress || egress.direction != Direction::Egress {
        return Err(ExecError::Contract("redeem needs one ingress and one egress asset".into()));
    }
    if !ingress.matches_for_redeem(&egress) {
        return Err(ExecError::Contract(
            "ingress/egress assets do not match (AS, window, bandwidth)".into(),
        ));
    }
    let as_account = as_accounts
        .get(&ingress.as_id)
        .copied()
        .ok_or_else(|| ExecError::Contract(format!("AS {} is not registered", ingress.as_id)))?;
    let request = RedeemRequest {
        requester: ctx.sender(),
        ephemeral_pk,
        ingress_asset: ingress_id,
        egress_asset: egress_id,
        asset: ingress.clone(),
        egress_interface: egress.interface,
    };
    let request_id = ctx.create(Owner::Address(as_account), TAG_REDEEM, request.encode());
    // Wrap the assets: they become children of the request, no longer
    // independently tradable.
    ctx.transfer(ingress_id, Owner::Object(request_id))?;
    ctx.transfer(egress_id, Owner::Object(request_id))?;
    Ok(request_id)
}
