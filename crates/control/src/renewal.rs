//! The O(1) renewal fast path (paper §4.2 extension).
//!
//! Re-buying a reservation through the market costs a purchase (with up
//! to three asset splits), a redeem wrapping two assets, and a delivery —
//! five-plus object mutations, a fresh First-Fit coloring pass and an
//! ECIES key exchange. For long-lived flows that simply want "the same
//! reservation, next window", that is pure overhead: the hop set, the
//! bandwidth class and the ResID all stay the same, and client and AS
//! *already share a secret* — the current window's `A_K`.
//!
//! A renewal instead touches a *fixed* number of objects and does no
//! public-key cryptography at all:
//!
//! 1. The client posts a [`RenewalRequest`] naming the reservation by
//!    `(ingress, res_id)` and its current *generation*, paying the
//!    renewal fee up front (one small request object + the fee payment).
//!    No ephemeral key is needed.
//! 2. The AS serves *all* pending renewals in one batched transaction
//!    ([`crate::AsService::process_renewals`]): for each accepted renewal
//!    it deletes the request and creates a [`RenewedReservation`] — two
//!    object touches — after extending the reservation's interval
//!    **in place** in the coloring state (`try_extend`: an O(log)
//!    successor check, no re-coloring). The new window's `A_K` is
//!    wrapped symmetrically (AES-CTR + HMAC) under a key ratcheted off
//!    the *previous* window's `A_K` ([`renewal_wrap_key`]), so the
//!    per-renewal crypto is two HMACs and one short AES pass instead of
//!    group exponentiations. Rejected renewals get the fee refunded in
//!    the same transaction.
//!
//! The generation counter makes requests idempotent and unambiguous: the
//! AS bumps it on every successful renewal, so a stale or replayed
//! request (wrong generation) is rejected and refunded instead of
//! double-extending. Authenticity needs no signature either — the
//! request's sender is checked on chain, and only the holder of the
//! previous `A_K` can unwrap the response. A renewal never changes the
//! reservation's ingress, egress or ResID — and therefore never moves it
//! to a different data-plane shard.

use crate::plane::{ControlPlane, CpResult};
use hummingbird_crypto::cmac::Cmac;
use hummingbird_crypto::sealed::SecretBox;
use hummingbird_ledger::codec::{DecodeError, Reader, Writer};
use hummingbird_ledger::{Address, ExecError, ObjectId, Owner};
use hummingbird_wire::IsdAs;

/// Type tag of renewal request objects.
pub const TAG_RENEWAL: &str = "hummingbird::renewal::RenewalRequest";

/// Type tag of renewed-reservation delivery objects.
pub const TAG_RENEWED: &str = "hummingbird::renewal::RenewedReservation";

/// Derives the symmetric wrapping key for a renewal delivery from the
/// previous window's authentication key. Both sides can compute it: the
/// client holds `prev_key` from its current reservation, the AS re-derives
/// it from `SV` (Eq. 2). Binding the *new* generation number into the
/// ratchet makes every window's wrap key distinct. AES-CMAC as the PRF —
/// same primitive (and hardware path) as the data-plane key derivation,
/// so a renewal costs no hash-function work at all.
pub fn renewal_wrap_key(prev_key: &[u8; 16], new_generation: u32) -> [u8; 16] {
    let mut msg = [0u8; 28];
    msg[..24].copy_from_slice(b"hummingbird-renewal-wrap");
    msg[24..].copy_from_slice(&new_generation.to_be_bytes());
    Cmac::new(prev_key).mac(&msg)
}

/// A client's request to extend an existing reservation by one more
/// duration window, owned by the issuing AS's account until served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RenewalRequest {
    /// Who is renewing (receives the wrapped delivery or the refund).
    pub requester: Address,
    /// Ingress interface of the reservation being renewed.
    pub ingress: u16,
    /// ResID of the reservation being renewed.
    pub res_id: u32,
    /// The reservation's current generation (number of prior renewals).
    pub generation: u32,
    /// Renewal fee in MIST, paid to the AS when the request is posted and
    /// refunded if the renewal is rejected.
    pub fee: u64,
}

impl RenewalRequest {
    /// Serializes the request.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.requester.0);
        w.u16(self.ingress);
        w.u32(self.res_id);
        w.u32(self.generation);
        w.u64(self.fee);
        w.finish()
    }

    /// Parses a request.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let req = RenewalRequest {
            requester: Address(r.array::<32>()?),
            ingress: r.u16()?,
            res_id: r.u32()?,
            generation: r.u32()?,
            fee: r.u64()?,
        };
        r.finish()?;
        Ok(req)
    }
}

/// A renewed-reservation delivery: plaintext routing fields so the client
/// can locate the reservation it extends (and derive the unwrap key), plus
/// the symmetrically wrapped `(ResInfo, A_K)` payload for the new window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RenewedReservation {
    /// The issuing AS.
    pub as_id: IsdAs,
    /// Ingress interface of the renewed reservation.
    pub ingress: u16,
    /// ResID of the renewed reservation (unchanged by renewal).
    pub res_id: u32,
    /// Generation *after* this renewal — the value to quote next time.
    pub generation: u32,
    /// Payload wrapped under [`renewal_wrap_key`] of the previous window.
    pub boxed: SecretBox,
}

impl RenewedReservation {
    /// Serializes the delivery.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(self.as_id.isd);
        w.u64(self.as_id.asn);
        w.u16(self.ingress);
        w.u32(self.res_id);
        w.u32(self.generation);
        w.bytes(&self.boxed.nonce);
        w.var_bytes(&self.boxed.ciphertext);
        w.bytes(&self.boxed.tag);
        w.finish()
    }

    /// Parses the delivery.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let as_id = IsdAs::new(r.u16()?, r.u64()?);
        let ingress = r.u16()?;
        let res_id = r.u32()?;
        let generation = r.u32()?;
        let nonce = r.array::<16>()?;
        let ciphertext = r.var_bytes()?;
        let tag = r.array::<16>()?;
        r.finish()?;
        Ok(RenewedReservation {
            as_id,
            ingress,
            res_id,
            generation,
            boxed: SecretBox { nonce, ciphertext, tag },
        })
    }
}

impl ControlPlane {
    /// Posts a renewal request to `as_account`, paying the fee up front.
    /// The request object is owned by the AS until it is served or
    /// rejected by [`crate::AsService::process_renewals`].
    pub fn request_renewal(
        &mut self,
        sender: Address,
        as_account: Address,
        request: RenewalRequest,
    ) -> CpResult<ObjectId> {
        if request.requester != sender {
            return Err(ExecError::Contract("renewal requester must be the sender".into()));
        }
        self.exec(sender, move |ctx| {
            ctx.pay(as_account, request.fee);
            Ok(ctx.create(Owner::Address(as_account), TAG_RENEWAL, request.encode()))
        })
    }

    /// Posts a whole batch of renewal requests in **one transaction**: one
    /// digest, one gas accounting pass and one fee payment covering every
    /// request, instead of a full transaction per renewal. A client
    /// renewing its portfolio for the next window is the common case at
    /// scale, and per-transaction overhead — not per-request work — is
    /// what dominates it. Returns the request object IDs in input order.
    pub fn request_renewals(
        &mut self,
        sender: Address,
        as_account: Address,
        requests: Vec<RenewalRequest>,
    ) -> CpResult<Vec<ObjectId>> {
        if requests.iter().any(|r| r.requester != sender) {
            return Err(ExecError::Contract("renewal requester must be the sender".into()));
        }
        self.exec(sender, move |ctx| {
            let total_fee: u64 = requests.iter().map(|r| r.fee).sum();
            ctx.pay(as_account, total_fee);
            Ok(requests
                .iter()
                .map(|r| ctx.create(Owner::Address(as_account), TAG_RENEWAL, r.encode()))
                .collect())
        })
    }

    /// All pending renewal requests owned by `as_account`, in object-ID
    /// order (index-backed, like [`ControlPlane::pending_requests`]).
    pub fn pending_renewals(&self, as_account: Address) -> Vec<(ObjectId, RenewalRequest)> {
        self.ledger
            .objects_owned_by(Owner::Address(as_account), TAG_RENEWAL)
            .filter_map(|e| RenewalRequest::decode(&e.data).ok().map(|r| (e.meta.id, r)))
            .collect()
    }

    /// All renewed-reservation deliveries owned by `recipient`, in
    /// object-ID order (index-backed).
    pub fn renewal_deliveries_for(
        &self,
        recipient: Address,
    ) -> Vec<(ObjectId, RenewedReservation)> {
        self.ledger
            .objects_owned_by(Owner::Address(recipient), TAG_RENEWED)
            .filter_map(|e| RenewedReservation::decode(&e.data).ok().map(|d| (e.meta.id, d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renewal_request_roundtrip() {
        let req = RenewalRequest {
            requester: Address::from_label("host"),
            ingress: 3,
            res_id: 1_234_567,
            generation: 42,
            fee: 5_000,
        };
        assert_eq!(RenewalRequest::decode(&req.encode()).unwrap(), req);
        let bytes = req.encode();
        assert!(RenewalRequest::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn renewed_reservation_roundtrip() {
        let d = RenewedReservation {
            as_id: IsdAs::new(1, 0x5005),
            ingress: 7,
            res_id: 99,
            generation: 3,
            boxed: SecretBox { nonce: [4u8; 16], ciphertext: vec![1, 2, 3, 4, 5], tag: [9u8; 16] },
        };
        assert_eq!(RenewedReservation::decode(&d.encode()).unwrap(), d);
        let bytes = d.encode();
        assert!(RenewedReservation::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn wrap_key_depends_on_key_and_generation() {
        let a = renewal_wrap_key(&[1u8; 16], 1);
        assert_eq!(a, renewal_wrap_key(&[1u8; 16], 1));
        assert_ne!(a, renewal_wrap_key(&[1u8; 16], 2));
        assert_ne!(a, renewal_wrap_key(&[2u8; 16], 1));
    }

    #[test]
    fn request_renewal_rejects_spoofed_requester() {
        let mut cp = ControlPlane::default();
        let mallory = Address::from_label("mallory");
        let victim = Address::from_label("victim");
        let as_account = Address::from_label("as");
        cp.faucet(mallory, 10);
        let req =
            RenewalRequest { requester: victim, ingress: 1, res_id: 0, generation: 0, fee: 100 };
        assert!(cp.request_renewal(mallory, as_account, req).is_err());
    }
}
