//! Epoch-batched auction clearing (paper §5.3).
//!
//! The paper notes that auction mechanisms "require … discrete rounds in
//! which the auctions complete". Settling each auction as its own
//! transaction makes every round cost O(auctions) transactions — each
//! with its own gas-coin mutation, digest computation, and effects
//! commit. The [`ClearingEngine`] instead settles **every auction whose
//! `close_epoch` matches the round in a single transaction**: one pass
//! over the revealed bids of the whole epoch, with the per-transaction
//! overhead amortized across all of them.
//!
//! The batched settlement is equivalent to running
//! [`ControlPlane::settle_auction`] sequentially over the same auctions
//! in ascending object-ID order: same winners, same clearing prices, and
//! the same final ledger object set. Both paths share one settlement
//! function ([`crate::auction`]'s `settle_auction_inner`), and a
//! differential test pins the equivalence end to end — including amount
//! ties and auctions with no valid bid. The only divergence is the
//! caller's gas coin, which the batch mutates once instead of N times.

use crate::auction::{settle_auction_inner, AuctionOutcome};
use crate::plane::{ControlPlane, CpResult};
use hummingbird_ledger::{Address, ObjectId};
use std::collections::BTreeMap;

/// Schedules auctions into settlement epochs and clears each epoch in one
/// batched transaction.
///
/// The engine is off-chain bookkeeping (which auctions belong to which
/// epoch); all money and asset movement happens inside the clearing
/// transaction, exactly as in per-auction settlement.
#[derive(Debug, Default)]
pub struct ClearingEngine {
    /// Auctions pending settlement, per epoch; each epoch's list is kept
    /// sorted so a cleared epoch processes auctions in ascending
    /// object-ID order — the same order a sequential settler iterating
    /// the chain would use.
    by_epoch: BTreeMap<u64, Vec<ObjectId>>,
}

impl ClearingEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an auction scheduled to settle in `close_epoch` and tracks
    /// it (see [`ControlPlane::create_auction_at`]).
    pub fn create_auction(
        &mut self,
        cp: &mut ControlPlane,
        seller: Address,
        asset_id: ObjectId,
        reserve_price: u64,
        close_epoch: u64,
    ) -> CpResult<ObjectId> {
        let receipt = cp.create_auction_at(seller, asset_id, reserve_price, close_epoch)?;
        self.track(receipt.value, close_epoch);
        Ok(receipt)
    }

    /// Registers an existing auction for settlement in `close_epoch`.
    pub fn track(&mut self, auction_id: ObjectId, close_epoch: u64) {
        let slot = self.by_epoch.entry(close_epoch).or_default();
        if let Err(pos) = slot.binary_search(&auction_id) {
            slot.insert(pos, auction_id);
        }
    }

    /// Number of auctions awaiting settlement in `epoch`.
    pub fn pending(&self, epoch: u64) -> usize {
        self.by_epoch.get(&epoch).map(Vec::len).unwrap_or(0)
    }

    /// Epochs that still have unsettled auctions, ascending.
    pub fn open_epochs(&self) -> Vec<u64> {
        self.by_epoch.keys().copied().collect()
    }

    /// Settles every tracked auction of `epoch` in **one transaction**.
    ///
    /// Every auction must already be in the reveal phase: the whole
    /// transaction aborts otherwise (atomically — no partial settlement)
    /// and the epoch stays tracked so the caller can close stragglers and
    /// retry. Returns the per-auction outcomes in ascending auction-ID
    /// order.
    pub fn clear_epoch(
        &mut self,
        cp: &mut ControlPlane,
        caller: Address,
        epoch: u64,
    ) -> CpResult<Vec<(ObjectId, AuctionOutcome)>> {
        let auctions = self.by_epoch.get(&epoch).cloned().unwrap_or_default();
        // Collect each auction's bid objects from the committed chain
        // state (index-backed; already in object-ID order).
        let bid_sets: Vec<Vec<ObjectId>> = auctions.iter().map(|&id| cp.auction_bids(id)).collect();
        let receipt = cp.exec(caller, move |ctx| {
            let mut outcomes = Vec::with_capacity(auctions.len());
            for (&auction_id, bid_ids) in auctions.iter().zip(&bid_sets) {
                let outcome = settle_auction_inner(ctx, auction_id, bid_ids)?;
                outcomes.push((auction_id, outcome));
            }
            Ok(outcomes)
        })?;
        self.by_epoch.remove(&epoch);
        Ok(receipt)
    }
}
