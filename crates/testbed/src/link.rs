//! Credit-windowed UDP links: the flow-control layer that makes exact
//! packet conservation provable over real sockets.
//!
//! `std::net` exposes no receive-buffer control, so a sender that simply
//! blasts datagrams at loopback speed will eventually overrun the
//! receiver's kernel buffer and the kernel will drop datagrams
//! *silently* — unattributable loss that would break the testbed's
//! `sent = received + dropped` accounting. Instead every link is
//! credit-windowed:
//!
//! * a [`CreditedSender`] keeps at most `window` data frames in flight —
//!   sized so even worst-case kernel skb accounting stays far below the
//!   default receive buffer, making kernel drops structurally impossible;
//! * the receiver counts every data frame it pulls off its socket and
//!   sends the cumulative count back on a separate control socket (an
//!   [`AckSender`], every `ack_every` frames and once more on FIN);
//! * a sender that would exceed its window polls its control socket
//!   under the runtime's [`WaitStrategy`] (`--wait` applies to the
//!   socket path exactly as it does to the in-process rings) until
//!   credit arrives — or errors out loudly after `timeout`, so a genuine
//!   stall (a wedged node, an unexpected kernel drop) surfaces as a
//!   failure instead of silent loss.
//!
//! Acks are cumulative *counts*, not sequence numbers, so they are
//! idempotent and loss-tolerant: a later ack supersedes any number of
//! lost earlier ones (and ack traffic is itself bounded by the data
//! window, so the control sockets cannot overrun either).

use hummingbird_dataplane::WaitStrategy;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use crate::frame::{KIND_DATA, KIND_FIN};

/// Spin/yield/sleep helper implementing a [`WaitStrategy`] between
/// nonblocking control-socket polls.
struct Waiter {
    strategy: WaitStrategy,
    spins: u32,
}

impl Waiter {
    fn new(strategy: WaitStrategy) -> Self {
        Waiter { strategy, spins: 0 }
    }

    fn reset(&mut self) {
        self.spins = 0;
    }

    fn wait(&mut self) {
        self.spins = self.spins.saturating_add(1);
        match self.strategy {
            WaitStrategy::BusyPoll => std::hint::spin_loop(),
            WaitStrategy::YieldAfter(n) => {
                if self.spins > n {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            WaitStrategy::Backoff => {
                if self.spins < 64 {
                    std::hint::spin_loop();
                } else if self.spins < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

/// The sending half of one credit-windowed link.
pub struct CreditedSender {
    data: UdpSocket,
    ctrl: UdpSocket,
    peer: SocketAddr,
    window: u64,
    timeout: Duration,
    waiter: Waiter,
    /// Data frames sent on this link.
    pub sent: u64,
    /// Highest cumulative receive count acknowledged by the peer.
    pub acked: u64,
}

impl CreditedSender {
    /// Opens a sender toward `peer` (the receiver's data socket) with at
    /// most `window` unacknowledged data frames in flight. The paired
    /// control socket ([`CreditedSender::ctrl_addr`]) must be handed to
    /// the receiver's [`AckSender`].
    pub fn new(
        peer: SocketAddr,
        window: usize,
        wait: WaitStrategy,
        timeout: Duration,
    ) -> io::Result<Self> {
        let data = UdpSocket::bind("127.0.0.1:0")?;
        let ctrl = UdpSocket::bind("127.0.0.1:0")?;
        ctrl.set_nonblocking(true)?;
        Ok(CreditedSender {
            data,
            ctrl,
            peer,
            window: window.max(1) as u64,
            timeout,
            waiter: Waiter::new(wait),
            sent: 0,
            acked: 0,
        })
    }

    /// Where the receiver must send its cumulative acks.
    pub fn ctrl_addr(&self) -> io::Result<SocketAddr> {
        self.ctrl.local_addr()
    }

    /// Drains every pending ack off the control socket (nonblocking).
    fn poll_acks(&mut self) {
        let mut buf = [0u8; 8];
        while let Ok(n) = self.ctrl.recv(&mut buf) {
            if n == 8 {
                self.acked = self.acked.max(u64::from_le_bytes(buf));
            }
        }
    }

    /// Waits (under the configured [`WaitStrategy`]) until at most
    /// `below` data frames are unacknowledged.
    fn wait_in_flight_below(&mut self, below: u64) -> io::Result<()> {
        if self.sent - self.acked < below {
            return Ok(());
        }
        let deadline = Instant::now() + self.timeout;
        self.waiter.reset();
        loop {
            self.poll_acks();
            if self.sent - self.acked < below {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "link stalled: {} of {} data frames unacknowledged after {:?}",
                        self.sent - self.acked,
                        self.sent,
                        self.timeout
                    ),
                ));
            }
            self.waiter.wait();
        }
    }

    /// Sends one data frame (`KIND_DATA` byte + serialized packet),
    /// blocking under the wait strategy while the window is full.
    pub fn send_data(&mut self, frame: &[u8]) -> io::Result<()> {
        debug_assert_eq!(frame.first(), Some(&KIND_DATA));
        self.wait_in_flight_below(self.window)?;
        self.data.send_to(frame, self.peer)?;
        self.sent += 1;
        Ok(())
    }

    /// Waits until the peer has acknowledged every data frame sent.
    ///
    /// Call *after* [`CreditedSender::send_fin`]: the receiver only acks
    /// on its `ack_every` cadence, so the frames past the last cadence
    /// boundary are acknowledged by the receiver's FIN-time flush. A
    /// drain issued before the FIN deadlocks on those trailing frames
    /// (and times out loudly) whenever `sent` is not a multiple of the
    /// cadence.
    pub fn drain(&mut self) -> io::Result<()> {
        self.wait_in_flight_below(1)
    }

    /// Sends the FIN marker. Loopback UDP delivers in order per socket
    /// pair, so the FIN arrives after every data frame already sent;
    /// the receiver flushes its cumulative ack on FIN, which is what
    /// lets the subsequent [`CreditedSender::drain`] complete.
    pub fn send_fin(&mut self) -> io::Result<()> {
        self.data.send_to(&[KIND_FIN], self.peer)?;
        Ok(())
    }
}

/// The receiving half's ack duty: counts data frames and reports the
/// cumulative count to the upstream sender's control socket.
pub struct AckSender {
    sock: UdpSocket,
    upstream_ctrl: SocketAddr,
    every: u64,
    /// Data frames received so far on this link.
    pub received: u64,
}

impl AckSender {
    /// Creates the ack half toward `upstream_ctrl`
    /// ([`CreditedSender::ctrl_addr`]), acking every `every` frames.
    pub fn new(upstream_ctrl: SocketAddr, every: u64) -> io::Result<Self> {
        Ok(AckSender {
            sock: UdpSocket::bind("127.0.0.1:0")?,
            upstream_ctrl,
            every: every.max(1),
            received: 0,
        })
    }

    /// Records one received data frame, acking on the cadence.
    pub fn on_data(&mut self) -> io::Result<()> {
        self.received += 1;
        if self.received.is_multiple_of(self.every) {
            self.flush()?;
        }
        Ok(())
    }

    /// Sends the current cumulative count unconditionally (the FIN-time
    /// final ack).
    pub fn flush(&mut self) -> io::Result<()> {
        self.sock.send_to(&self.received.to_le_bytes(), self.upstream_ctrl)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_blocks_until_acked_and_drain_completes() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        rx.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut tx = CreditedSender::new(
            rx.local_addr().unwrap(),
            2,
            WaitStrategy::Backoff,
            Duration::from_millis(200),
        )
        .unwrap();
        let mut ack = AckSender::new(tx.ctrl_addr().unwrap(), 1).unwrap();

        let frame = [KIND_DATA, 1, 2, 3];
        tx.send_data(&frame).unwrap();
        tx.send_data(&frame).unwrap();
        // Window of 2 is full and nothing acked: the third send times out.
        let err = tx.send_data(&frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);

        // The receiver pulls both frames and acks; credit returns.
        let mut buf = [0u8; 64];
        for _ in 0..2 {
            let n = rx.recv(&mut buf).unwrap();
            assert_eq!(buf[..n], frame);
            ack.on_data().unwrap();
        }
        tx.send_data(&frame).unwrap();
        let n = rx.recv(&mut buf).unwrap();
        assert_eq!(buf[..n], frame);
        ack.on_data().unwrap();
        tx.drain().unwrap();
        assert_eq!(tx.sent, 3);
        assert_eq!(tx.acked, 3);

        // FIN travels the data path after the drain.
        tx.send_fin().unwrap();
        let n = rx.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], &[KIND_FIN]);
    }

    #[test]
    fn acks_are_cumulative_and_loss_tolerant() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut tx = CreditedSender::new(
            rx.local_addr().unwrap(),
            4,
            WaitStrategy::YieldAfter(8),
            Duration::from_secs(1),
        )
        .unwrap();
        // A stale (smaller) ack never regresses the credit.
        let ctrl = tx.ctrl_addr().unwrap();
        let side = UdpSocket::bind("127.0.0.1:0").unwrap();
        side.send_to(&5u64.to_le_bytes(), ctrl).unwrap();
        side.send_to(&3u64.to_le_bytes(), ctrl).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        tx.poll_acks();
        assert_eq!(tx.acked, 5);
    }
}
