//! Deterministic traffic mixes for the socket testbed.
//!
//! A mix is a set of flows (each reserved or best-effort) plus a
//! deterministic packet schedule: `plan(total)` returns which flow each
//! of the `total` packets belongs to. Determinism matters — the same
//! spec replays the same schedule, so checked-in benchmark artifacts are
//! reproducible and conservation counts are exact by construction.

/// One flow of a mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Reserved flows carry the family's per-hop credential (and, for
    /// hummingbird/helia, ride the priority class); best-effort flows
    /// ride plain.
    pub reserved: bool,
}

/// A mix's flow table plus the packet → flow schedule.
#[derive(Clone, Debug)]
pub struct MixPlan {
    /// The flows, indexed by flow id.
    pub flows: Vec<FlowSpec>,
    /// `sequence[i]` is the flow id of the `i`-th packet sent.
    pub sequence: Vec<u32>,
}

/// The traffic shapes the testbed drives through a chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficMix {
    /// Eight constant-bit-rate flows (half reserved), strict round-robin.
    Cbr,
    /// Eight on/off flows taking turns in bursts of 64 back-to-back
    /// packets — the worst case for per-link buffering.
    BurstyOnOff,
    /// Two elephants (one reserved, one best-effort) carrying ~80% of
    /// packets, with 40 mice sharing the rest.
    ElephantMice,
    /// Four steady base flows, then a flash crowd: during the middle
    /// half of the run, 128 fresh best-effort sources grab every other
    /// slot — the paper's overload story at datagram granularity.
    FlashCrowd,
    /// One reserved interactive call (~30%) competing with four
    /// best-effort bulk transfers — the `examples/videocall.rs` scenario
    /// over real sockets.
    VideoCall,
}

impl TrafficMix {
    /// The standard benchmark set (the example-only `VideoCall` mix is
    /// excluded).
    pub const ALL: [TrafficMix; 4] = [
        TrafficMix::Cbr,
        TrafficMix::BurstyOnOff,
        TrafficMix::ElephantMice,
        TrafficMix::FlashCrowd,
    ];

    /// Stable display name (used in JSON artifacts and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            TrafficMix::Cbr => "cbr",
            TrafficMix::BurstyOnOff => "bursty",
            TrafficMix::ElephantMice => "elephant_mice",
            TrafficMix::FlashCrowd => "flash_crowd",
            TrafficMix::VideoCall => "videocall",
        }
    }

    /// Parses a mix from its [`TrafficMix::name`].
    pub fn from_name(name: &str) -> Option<TrafficMix> {
        [
            TrafficMix::Cbr,
            TrafficMix::BurstyOnOff,
            TrafficMix::ElephantMice,
            TrafficMix::FlashCrowd,
            TrafficMix::VideoCall,
        ]
        .into_iter()
        .find(|m| m.name() == name)
    }

    /// Builds the flow table and the packet schedule for a `total`-packet
    /// run.
    pub fn plan(&self, total: u64) -> MixPlan {
        let total = total as usize;
        match self {
            TrafficMix::Cbr => {
                // Flows 0..4 reserved, 4..8 best-effort; round-robin.
                let flows = class_split(8, 4);
                let sequence = (0..total).map(|i| (i % 8) as u32).collect();
                MixPlan { flows, sequence }
            }
            TrafficMix::BurstyOnOff => {
                let flows = class_split(8, 4);
                let sequence = (0..total).map(|i| ((i / 64) % 8) as u32).collect();
                MixPlan { flows, sequence }
            }
            TrafficMix::ElephantMice => {
                // Flow 0: reserved elephant; flow 1: best-effort
                // elephant; flows 2..42: mice, alternating class. Blocks
                // of ten: four packets per elephant, two mice.
                let mut flows = vec![FlowSpec { reserved: true }, FlowSpec { reserved: false }];
                flows.extend((0..40).map(|i| FlowSpec { reserved: i % 2 == 0 }));
                let mut mouse = 0usize;
                let sequence = (0..total)
                    .map(|i| match i % 10 {
                        0..=3 => 0u32,
                        4..=7 => 1,
                        _ => {
                            mouse += 1;
                            (2 + (mouse - 1) % 40) as u32
                        }
                    })
                    .collect();
                MixPlan { flows, sequence }
            }
            TrafficMix::FlashCrowd => {
                // Flows 0..2 reserved base, 2..4 best-effort base,
                // 4..132 the crowd (all best-effort).
                let mut flows = class_split(4, 2);
                flows.extend((0..128).map(|_| FlowSpec { reserved: false }));
                let (surge_from, surge_to) = (total / 4, 3 * total / 4);
                let mut crowd = 0usize;
                let sequence = (0..total)
                    .map(|i| {
                        if i >= surge_from && i < surge_to && i % 2 == 1 {
                            crowd += 1;
                            (4 + (crowd - 1) % 128) as u32
                        } else {
                            (i % 4) as u32
                        }
                    })
                    .collect();
                MixPlan { flows, sequence }
            }
            TrafficMix::VideoCall => {
                // Flow 0: the reserved call; flows 1..5: best-effort
                // bulk. Blocks of ten: three call packets, seven bulk.
                let mut flows = vec![FlowSpec { reserved: true }];
                flows.extend((0..4).map(|_| FlowSpec { reserved: false }));
                let sequence = (0..total)
                    .map(|i| match i % 10 {
                        0..=2 => 0u32,
                        r => (1 + (r - 3) % 4) as u32,
                    })
                    .collect();
                MixPlan { flows, sequence }
            }
        }
    }
}

/// `n` flows with the first `reserved` of them credentialed.
fn class_split(n: usize, reserved: usize) -> Vec<FlowSpec> {
    (0..n).map(|i| FlowSpec { reserved: i < reserved }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mix_plans_full_schedules_with_both_classes() {
        for mix in TrafficMix::ALL.iter().chain([TrafficMix::VideoCall].iter()) {
            let plan = mix.plan(10_000);
            assert_eq!(plan.sequence.len(), 10_000, "{}", mix.name());
            assert!(
                plan.sequence.iter().all(|&f| (f as usize) < plan.flows.len()),
                "{}: flow id out of table",
                mix.name()
            );
            assert!(plan.flows.iter().any(|f| f.reserved), "{}", mix.name());
            assert!(plan.flows.iter().any(|f| !f.reserved), "{}", mix.name());
            // Every flow in the table actually sends at least once.
            let mut seen = vec![false; plan.flows.len()];
            for &f in &plan.sequence {
                seen[f as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "{}: unused flow in table", mix.name());
            assert_eq!(
                plan.sequence,
                mix.plan(10_000).sequence,
                "{}: not deterministic",
                mix.name()
            );
        }
    }

    #[test]
    fn flash_crowd_surges_only_in_the_middle_half() {
        let plan = TrafficMix::FlashCrowd.plan(4_000);
        assert!(plan.sequence[..1_000].iter().all(|&f| f < 4));
        assert!(plan.sequence[3_000..].iter().all(|&f| f < 4));
        assert!(plan.sequence[1_000..3_000].iter().any(|&f| f >= 4));
    }

    #[test]
    fn names_roundtrip() {
        for mix in TrafficMix::ALL.iter().chain([TrafficMix::VideoCall].iter()) {
            assert_eq!(TrafficMix::from_name(mix.name()), Some(*mix));
        }
        assert_eq!(TrafficMix::from_name("nope"), None);
    }
}
