//! The socket-facing nodes of the chain: [`SocketRouter`] (rx → parse →
//! engine → tx) and [`Sink`] (rx → parse → latency/conservation
//! accounting).
//!
//! A router node is exactly the paper's border-router loop over real
//! datagrams: pull a frame off its UDP socket, validate the packet with
//! [`PacketView::new_checked`] (plus the declared-vs-actual length
//! check), drive it through any [`Datapath`] — in practice a
//! [`ShardedRouter`](hummingbird_dataplane::ShardedRouter) over the
//! selected engine family, so `--cores`/`--wait` apply — and forward the
//! mutated bytes to the next hop's socket. Every datagram is accounted
//! for: it is forwarded, counted as an engine drop against its flow, or
//! counted as a parse drop. Nothing is lost silently, which is what
//! makes the harness's exact conservation check possible.
//!
//! [`PacketView::new_checked`]: hummingbird_wire::PacketView::new_checked

use hummingbird_dataplane::{Datapath, DropReason, LatencyHistogram, Verdict};
use hummingbird_wire::PacketView;
use std::io;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

use crate::frame::{PayloadHeader, KIND_DATA, KIND_FIN, PAYLOAD_HDR_LEN};
use crate::link::{AckSender, CreditedSender};
use crate::now_unix_ns;

/// Largest datagram a node accepts (header + payload headroom).
pub const MAX_DATAGRAM: usize = 2048;

/// Traffic class of a flow: `RESERVED` carries the family's per-hop
/// credential, `BEST_EFFORT` rides plain.
pub const RESERVED: usize = 0;
/// See [`RESERVED`].
pub const BEST_EFFORT: usize = 1;

/// Per-class, per-flow accounting one node accumulates.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Data frames received off the socket.
    pub rx: u64,
    /// Packets forwarded to the next hop (router) / delivered (sink).
    pub forwarded: [u64; 2],
    /// Engine drops per class.
    pub engine_drops: [u64; 2],
    /// Engine drops per flow id.
    pub flow_drops: Vec<u64>,
    /// Datagrams that failed structural validation (bad kind byte,
    /// `new_checked` failure, declared/actual length mismatch, missing
    /// payload header). Classless by construction — an unparseable
    /// datagram has no trustworthy flow id.
    pub parse_drops: u64,
    /// Engine drop reasons, for diagnosis.
    pub drop_reasons: Vec<(DropReason, u64)>,
}

impl NodeStats {
    fn new(flows: usize) -> Self {
        NodeStats { flow_drops: vec![0; flows], ..NodeStats::default() }
    }

    fn count_reason(&mut self, reason: DropReason) {
        if let Some(slot) = self.drop_reasons.iter_mut().find(|(r, _)| *r == reason) {
            slot.1 += 1;
        } else {
            self.drop_reasons.push((reason, 1));
        }
    }

    /// Total engine drops.
    pub fn engine_dropped(&self) -> u64 {
        self.engine_drops[RESERVED] + self.engine_drops[BEST_EFFORT]
    }
}

/// Validates one received data frame: checked view over the packet
/// bytes, declared length equal to the datagram length, and a readable
/// payload header. Returns the flow header on success.
fn validate_frame(pkt: &[u8]) -> Option<PayloadHeader> {
    let view = PacketView::new_checked(pkt).ok()?;
    if view.wire_len().ok()? != pkt.len() {
        return None;
    }
    PayloadHeader::read(view.payload().ok()?)
}

/// One border-router node: rx socket → engine → credit-windowed tx.
pub struct SocketRouter {
    /// This node's data socket (upstream sends here).
    pub data: UdpSocket,
    /// The engine under test (a `ShardedRouter` over the family).
    pub engine: Box<dyn Datapath + Send>,
    /// Credit-windowed link to the next hop.
    pub next: CreditedSender,
    /// Ack duty toward the upstream sender.
    pub acks: AckSender,
    /// `flow_id → class` table (true = reserved).
    pub flow_reserved: Vec<bool>,
    /// Rx timeout: a socket silent this long is a stall, not a wait.
    pub timeout: Duration,
}

impl SocketRouter {
    /// Runs the node until FIN: every data frame is parsed, processed
    /// and forwarded (or counted as a drop); the FIN then follows the
    /// last forwarded frame, and the node waits until the downstream
    /// hop has acknowledged every forwarded frame (the FIN is what
    /// triggers the downstream's final ack flush).
    pub fn run(mut self) -> io::Result<NodeStats> {
        let mut stats = NodeStats::new(self.flow_reserved.len());
        let mut buf = [0u8; MAX_DATAGRAM];
        self.data.set_read_timeout(Some(self.timeout))?;
        loop {
            let n = self.data.recv(&mut buf)?;
            if n >= 1 && buf[0] == KIND_FIN {
                self.acks.flush()?;
                break;
            }
            stats.rx += 1;
            self.acks.on_data()?;
            if n < 1 || buf[0] != KIND_DATA {
                stats.parse_drops += 1;
                continue;
            }
            let pkt = &mut buf[1..n];
            let Some(hdr) = validate_frame(pkt) else {
                stats.parse_drops += 1;
                continue;
            };
            let class = match self.flow_reserved.get(hdr.flow_id as usize) {
                Some(true) => RESERVED,
                Some(false) => BEST_EFFORT,
                None => {
                    stats.parse_drops += 1;
                    continue;
                }
            };
            match self.engine.process(pkt, now_unix_ns()) {
                Verdict::Drop(reason) => {
                    stats.engine_drops[class] += 1;
                    stats.flow_drops[hdr.flow_id as usize] += 1;
                    stats.count_reason(reason);
                }
                Verdict::Flyover { .. } | Verdict::BestEffort { .. } => {
                    self.next.send_data(&buf[..n])?;
                    stats.forwarded[class] += 1;
                }
            }
        }
        // FIN first, then drain: the downstream acks its trailing
        // sub-cadence frames only on FIN, so the reverse order
        // deadlocks whenever the forwarded count is not a multiple of
        // the ack cadence. Loopback delivers in order, so the FIN
        // cannot overtake the data frames.
        self.next.send_fin()?;
        self.next.drain()?;
        Ok(stats)
    }
}

/// What the sink measured for one class.
#[derive(Clone, Debug, Default)]
pub struct SinkClass {
    /// Packets delivered.
    pub pkts: u64,
    /// Payload bytes delivered (goodput numerator).
    pub payload_bytes: u64,
    /// End-to-end latency distribution (send stamp → sink rx).
    pub latency: LatencyHistogram,
}

/// End-of-chain measurements.
#[derive(Clone, Debug, Default)]
pub struct SinkReport {
    /// Per-class delivery and latency.
    pub classes: [SinkClass; 2],
    /// Packets delivered per flow id.
    pub flow_delivered: Vec<u64>,
    /// Structurally invalid datagrams.
    pub parse_drops: u64,
    /// First data frame → FIN, nanoseconds (0 when nothing arrived).
    pub wall_ns: u64,
}

/// The destination host: counts, classifies and time-stamps everything
/// that survived the chain.
pub struct Sink {
    /// This node's data socket.
    pub data: UdpSocket,
    /// Ack duty toward the last router.
    pub acks: AckSender,
    /// `flow_id → class` table (true = reserved).
    pub flow_reserved: Vec<bool>,
    /// The run's shared clock epoch (latency = now − stamp).
    pub epoch: Instant,
    /// Rx timeout, as in [`SocketRouter`].
    pub timeout: Duration,
}

impl Sink {
    /// Runs until FIN, measuring delivery and end-to-end latency.
    pub fn run(mut self) -> io::Result<SinkReport> {
        let mut report = SinkReport {
            flow_delivered: vec![0; self.flow_reserved.len()],
            ..SinkReport::default()
        };
        let mut buf = [0u8; MAX_DATAGRAM];
        let mut first_rx: Option<Instant> = None;
        self.data.set_read_timeout(Some(self.timeout))?;
        loop {
            let n = self.data.recv(&mut buf)?;
            if n >= 1 && buf[0] == KIND_FIN {
                self.acks.flush()?;
                break;
            }
            first_rx.get_or_insert_with(Instant::now);
            self.acks.on_data()?;
            if n < 1 || buf[0] != KIND_DATA {
                report.parse_drops += 1;
                continue;
            }
            let pkt = &buf[1..n];
            let Some(hdr) = validate_frame(pkt) else {
                report.parse_drops += 1;
                continue;
            };
            let class = match self.flow_reserved.get(hdr.flow_id as usize) {
                Some(true) => RESERVED,
                Some(false) => BEST_EFFORT,
                None => {
                    report.parse_drops += 1;
                    continue;
                }
            };
            let now_ns = self.epoch.elapsed().as_nanos() as u64;
            let cls = &mut report.classes[class];
            cls.pkts += 1;
            cls.payload_bytes += (n - 1) as u64 - PAYLOAD_HDR_LEN as u64;
            cls.latency.record(now_ns.saturating_sub(hdr.stamp_ns));
            report.flow_delivered[hdr.flow_id as usize] += 1;
        }
        if let Some(first) = first_rx {
            report.wall_ns = first.elapsed().as_nanos() as u64;
        }
        Ok(report)
    }
}
