//! Real-socket UDP testbed: a gateway, a chain of border routers and a
//! sink running as threads that exchange *real UDP datagrams* over
//! loopback — the deployment-shaped counterpart to the in-process
//! benchmarks and the discrete-event `netsim`.
//!
//! Each router node pulls datagrams off its own `UdpSocket`, validates
//! them with [`hummingbird_wire::PacketView::new_checked`], drives them
//! through any [`EngineFamily`](hummingbird_netsim::EngineFamily)
//! datapath behind a [`ShardedRouter`](hummingbird_dataplane::ShardedRouter)
//! (so the bench `--cores`/`--wait` knobs apply unchanged), and forwards
//! the mutated bytes to the next hop's socket. Links are credit-windowed
//! ([`link`]) so kernel receive-buffer drops are structurally impossible
//! and `sent = delivered + dropped` holds *exactly* — globally, per
//! class and per flow ([`harness`]).
//!
//! The crate deliberately reuses the rest of the repository instead of
//! duplicating it: packets come from the dataplane's
//! [`SourceGenerator`](hummingbird_dataplane::SourceGenerator),
//! credentials and hop engines from
//! [`LinearTopology`](hummingbird_netsim::LinearTopology), and tail
//! latency from the dataplane's
//! [`LatencyHistogram`](hummingbird_dataplane::LatencyHistogram).

pub mod frame;
pub mod harness;
pub mod link;
pub mod mix;
pub mod node;

pub use frame::{PayloadHeader, KIND_DATA, KIND_FIN, PAYLOAD_HDR_LEN};
pub use harness::{run_chain, ChainSpec, ClassReport, RunReport, RESERVED_BW_KBPS};
pub use link::{AckSender, CreditedSender};
pub use mix::{FlowSpec, MixPlan, TrafficMix};
pub use node::{NodeStats, Sink, SinkClass, SinkReport, SocketRouter, BEST_EFFORT, RESERVED};

use std::time::{SystemTime, UNIX_EPOCH};

/// Wall-clock Unix time in milliseconds — what generators stamp packets
/// with (engines enforce a freshness window against the same clock).
pub fn now_unix_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).expect("clock before epoch").as_millis() as u64
}

/// Wall-clock Unix time in nanoseconds — what engines are handed as
/// `now_ns`.
pub fn now_unix_ns() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).expect("clock before epoch").as_nanos() as u64
}
