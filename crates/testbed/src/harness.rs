//! Chain assembly and the end-to-end run loop.
//!
//! [`run_chain`] stands up one gateway → router… → sink chain over UDP
//! loopback: the gateway thread generates and sends `pkts` real
//! datagrams per the mix's schedule, each router thread drives its own
//! [`ShardedRouter`] over the selected engine family, and the sink
//! thread measures delivery, goodput and end-to-end latency. When the
//! FIN has propagated, the harness cross-checks every counter for exact
//! packet conservation — `sent = delivered + engine drops + parse
//! drops`, globally, per flow and per class — and reports any violation
//! as a loud error string rather than a skewed statistic.

use hummingbird_dataplane::{
    Datapath, DropReason, LatencyHistogram, RouterConfig, ShardedRouter, WaitStrategy,
};
use hummingbird_netsim::{EngineFamily, LinearTopology, LinkSpec};
use hummingbird_wire::IsdAs;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

use crate::frame::{PayloadHeader, KIND_DATA, PAYLOAD_HDR_LEN};
use crate::link::{AckSender, CreditedSender};
use crate::mix::TrafficMix;
use crate::node::{NodeStats, Sink, SocketRouter, BEST_EFFORT, RESERVED};
use crate::{now_unix_ms, now_unix_ns};

/// Bandwidth granted to each reserved flow: 10 Gbps, far above anything
/// a loopback chain can carry, so policing never throttles a
/// well-behaved credentialed flow.
pub const RESERVED_BW_KBPS: u64 = 10_000_000;

/// Destination AS of every testbed flow.
const DST: IsdAs = IsdAs::new(2, 0xB);

/// Source AS of flow `f` — one AS per flow, so source-keyed families
/// (EPIC, DRKey) spread flows across shards just like reservation-keyed
/// ones.
fn flow_src(f: usize) -> IsdAs {
    IsdAs::new(1, 0x100 + f as u64)
}

/// One chain configuration: which family and mix, at what scale.
#[derive(Clone, Debug)]
pub struct ChainSpec {
    /// Engine family every router in the chain runs.
    pub family: EngineFamily,
    /// Traffic shape the gateway drives.
    pub mix: TrafficMix,
    /// Number of border routers between gateway and sink.
    pub routers: usize,
    /// Engine shards per router (`--cores`).
    pub shards: usize,
    /// How senders wait for link credit (`--wait`).
    pub wait: WaitStrategy,
    /// Total packets the gateway sends.
    pub pkts: u64,
    /// L4 payload length per packet (≥ [`PAYLOAD_HDR_LEN`]).
    pub payload_len: usize,
    /// Credit window per link, in data frames.
    pub window: usize,
    /// Receiver ack cadence, in data frames.
    pub ack_every: u64,
    /// Stall budget: a link or socket silent this long fails the run.
    pub timeout: Duration,
}

impl ChainSpec {
    /// A 3-router chain at the default scale.
    pub fn new(family: EngineFamily, mix: TrafficMix) -> Self {
        ChainSpec {
            family,
            mix,
            routers: 3,
            shards: 1,
            wait: WaitStrategy::Backoff,
            pkts: 100_000,
            payload_len: 200,
            window: 64,
            ack_every: 16,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Per-class outcome of a run.
#[derive(Clone, Debug, Default)]
pub struct ClassReport {
    /// Packets the gateway sent in this class.
    pub sent: u64,
    /// Packets the sink delivered.
    pub delivered: u64,
    /// Packets engines dropped along the chain.
    pub engine_dropped: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// End-to-end latency distribution at the sink.
    pub latency: LatencyHistogram,
}

impl ClassReport {
    /// Delivered payload rate in Mbit/s over the sink's measurement
    /// window (0 when the window is empty).
    pub fn goodput_mbps(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            return 0.0;
        }
        (self.payload_bytes as f64 * 8.0 * 1e3) / wall_ns as f64
    }
}

/// Everything one chain run produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Family under test.
    pub family: EngineFamily,
    /// Mix driven.
    pub mix: TrafficMix,
    /// Routers in the chain.
    pub routers: usize,
    /// Shards per router.
    pub shards: usize,
    /// Packets sent.
    pub sent: u64,
    /// Per-class accounting: `[RESERVED, BEST_EFFORT]`.
    pub classes: [ClassReport; 2],
    /// Structurally invalid datagrams across all nodes.
    pub parse_drops: u64,
    /// Engine drop reasons, merged across routers.
    pub drop_reasons: Vec<(DropReason, u64)>,
    /// Sink measurement window (first delivery → FIN), ns.
    pub wall_ns: u64,
    /// Conservation violations; empty on a clean run.
    pub violations: Vec<String>,
}

impl RunReport {
    /// Total packets delivered.
    pub fn delivered(&self) -> u64 {
        self.classes[RESERVED].delivered + self.classes[BEST_EFFORT].delivered
    }

    /// Total engine drops.
    pub fn engine_dropped(&self) -> u64 {
        self.classes[RESERVED].engine_dropped + self.classes[BEST_EFFORT].engine_dropped
    }

    /// True when every packet is accounted for and nothing failed to
    /// parse.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.parse_drops == 0
    }
}

/// Runs one gateway → routers → sink chain over UDP loopback and
/// returns the fully cross-checked report. `Err` means the chain itself
/// failed (a stalled link, a dead socket, a generator error);
/// conservation violations are reported in [`RunReport::violations`]
/// instead, so the caller can print the numbers before failing.
pub fn run_chain(spec: &ChainSpec) -> Result<RunReport, String> {
    assert!(spec.routers >= 1, "a chain needs at least one router");
    assert!(spec.payload_len >= PAYLOAD_HDR_LEN, "payload must fit the measurement header");

    let cfg = RouterConfig::default();
    let start_ns = now_unix_ns();
    let mut topo = LinearTopology::build(spec.routers, LinkSpec::default(), start_ns, cfg);

    // Flow table and per-flow generators (credentialed where reserved).
    let plan = spec.mix.plan(spec.pkts);
    let flow_reserved: Vec<bool> = plan.flows.iter().map(|f| f.reserved).collect();
    let now_s = start_ns / 1_000_000_000;
    let mut generators = Vec::with_capacity(plan.flows.len());
    for (f, flow) in plan.flows.iter().enumerate() {
        let src = flow_src(f);
        let mut gen = topo.make_generator(src, DST);
        if flow.reserved {
            for hop in 0..spec.routers {
                let cred =
                    topo.make_family_credential(spec.family, hop, src, RESERVED_BW_KBPS, now_s);
                gen.attach_reservation(hop, cred)
                    .map_err(|e| format!("flow {f} hop {hop}: attach failed: {e:?}"))?;
            }
        }
        generators.push(gen);
    }

    // Rx sockets for every node, addresses resolved before any socket
    // moves into its node.
    let err = |e: std::io::Error| e.to_string();
    let router_socks: Vec<UdpSocket> = (0..spec.routers)
        .map(|_| UdpSocket::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()
        .map_err(err)?;
    let sink_sock = UdpSocket::bind("127.0.0.1:0").map_err(err)?;
    let mut peer_addrs = Vec::with_capacity(spec.routers + 1);
    for sock in &router_socks {
        peer_addrs.push(sock.local_addr().map_err(err)?);
    }
    peer_addrs.push(sink_sock.local_addr().map_err(err)?);

    // Credit-windowed senders along the chain: the gateway's toward
    // router 0, then each router's toward its successor (or the sink).
    // Each node acks toward the control socket of the sender feeding it.
    let mut gw_sender =
        CreditedSender::new(peer_addrs[0], spec.window, spec.wait, spec.timeout).map_err(err)?;
    let mut senders = Vec::with_capacity(spec.routers);
    for hop in 0..spec.routers {
        senders.push(
            CreditedSender::new(peer_addrs[hop + 1], spec.window, spec.wait, spec.timeout)
                .map_err(err)?,
        );
    }
    let mut upstream_ctrls = vec![gw_sender.ctrl_addr().map_err(err)?];
    for s in &senders {
        upstream_ctrls.push(s.ctrl_addr().map_err(err)?);
    }

    // Spawn the chain. The shared `epoch` Instant is the run's clock:
    // the gateway stamps payloads with it, the sink subtracts.
    let epoch = Instant::now();
    let mut router_handles = Vec::with_capacity(spec.routers);
    for (hop, (data, next)) in router_socks.into_iter().zip(senders).enumerate() {
        let engines: Vec<Box<dyn Datapath + Send>> = (0..spec.shards.max(1))
            .map(|_| topo.make_family_hop_engine(spec.family, hop, cfg))
            .collect();
        let router = SocketRouter {
            data,
            engine: Box::new(ShardedRouter::new(
                engines,
                cfg.policer_slots,
                spec.family.steering(),
            )),
            next,
            acks: AckSender::new(upstream_ctrls[hop], spec.ack_every).map_err(err)?,
            flow_reserved: flow_reserved.clone(),
            timeout: spec.timeout,
        };
        router_handles.push(std::thread::spawn(move || router.run()));
    }
    let sink = Sink {
        data: sink_sock,
        acks: AckSender::new(upstream_ctrls[spec.routers], spec.ack_every).map_err(err)?,
        flow_reserved: flow_reserved.clone(),
        epoch,
        timeout: spec.timeout,
    };
    let sink_handle = std::thread::spawn(move || sink.run());

    // The gateway runs on the calling thread: generate each packet
    // fresh (engines check wall-clock freshness) and push it through the
    // credit window.
    let mut seqs = vec![0u64; generators.len()];
    let mut payload = vec![0u8; spec.payload_len];
    let mut frame = Vec::with_capacity(1 + spec.payload_len + 512);
    for &f in &plan.sequence {
        let fi = f as usize;
        PayloadHeader { flow_id: f, seq: seqs[fi], stamp_ns: epoch.elapsed().as_nanos() as u64 }
            .write(&mut payload);
        seqs[fi] += 1;
        let pkt = generators[fi]
            .generate(&payload, now_unix_ms())
            .map_err(|e| format!("flow {fi}: generate failed: {e:?}"))?;
        frame.clear();
        frame.push(KIND_DATA);
        frame.extend_from_slice(&pkt);
        gw_sender.send_data(&frame).map_err(err)?;
    }
    // FIN before drain: router 0 flushes its final (sub-cadence) ack
    // when the FIN arrives, which is what lets the drain complete.
    gw_sender.send_fin().map_err(err)?;
    gw_sender.drain().map_err(err)?;

    let mut router_stats: Vec<NodeStats> = Vec::with_capacity(spec.routers);
    for (hop, handle) in router_handles.into_iter().enumerate() {
        let stats = handle
            .join()
            .map_err(|_| format!("router {hop} panicked"))?
            .map_err(|e| format!("router {hop}: {e}"))?;
        router_stats.push(stats);
    }
    let sink_report = sink_handle
        .join()
        .map_err(|_| "sink panicked".to_owned())?
        .map_err(|e| format!("sink: {e}"))?;

    // Assemble and cross-check.
    let mut classes = [ClassReport::default(), ClassReport::default()];
    for (f, &reserved) in flow_reserved.iter().enumerate() {
        classes[if reserved { RESERVED } else { BEST_EFFORT }].sent += seqs[f];
    }
    for class in [RESERVED, BEST_EFFORT] {
        classes[class].delivered = sink_report.classes[class].pkts;
        classes[class].payload_bytes = sink_report.classes[class].payload_bytes;
        classes[class].latency = sink_report.classes[class].latency;
        classes[class].engine_dropped = router_stats.iter().map(|s| s.engine_drops[class]).sum();
    }
    let parse_drops: u64 =
        router_stats.iter().map(|s| s.parse_drops).sum::<u64>() + sink_report.parse_drops;
    let mut drop_reasons: Vec<(DropReason, u64)> = Vec::new();
    for stats in &router_stats {
        for &(reason, n) in &stats.drop_reasons {
            if let Some(slot) = drop_reasons.iter_mut().find(|(r, _)| *r == reason) {
                slot.1 += n;
            } else {
                drop_reasons.push((reason, n));
            }
        }
    }

    let mut violations = Vec::new();
    let delivered: u64 = classes.iter().map(|c| c.delivered).sum();
    let engine_dropped: u64 = classes.iter().map(|c| c.engine_dropped).sum();
    if spec.pkts != delivered + engine_dropped + parse_drops {
        violations.push(format!(
            "global conservation: sent {} != delivered {} + engine drops {} + parse drops {}",
            spec.pkts, delivered, engine_dropped, parse_drops
        ));
    }
    for class in [RESERVED, BEST_EFFORT] {
        let c = &classes[class];
        // Parse drops are classless, so this per-class identity only
        // holds exactly on parse-clean runs — which every run must be.
        if parse_drops == 0 && c.sent != c.delivered + c.engine_dropped {
            violations.push(format!(
                "class {class} conservation: sent {} != delivered {} + engine drops {}",
                c.sent, c.delivered, c.engine_dropped
            ));
        }
    }
    for (f, &sent) in seqs.iter().enumerate() {
        let dropped: u64 = router_stats.iter().map(|s| s.flow_drops[f]).sum();
        let delivered = sink_report.flow_delivered[f];
        if sent != delivered + dropped {
            violations.push(format!(
                "flow {f} conservation: sent {sent} != delivered {delivered} + drops {dropped}"
            ));
        }
    }

    Ok(RunReport {
        family: spec.family,
        mix: spec.mix,
        routers: spec.routers,
        shards: spec.shards,
        sent: spec.pkts,
        classes,
        parse_drops,
        drop_reasons,
        wall_ns: sink_report.wall_ns,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short chain per family: every packet accounted for, both
    /// classes delivered, latency histograms populated. The packet
    /// count is deliberately *not* a multiple of the 16-frame ack
    /// cadence — a regression guard for the FIN/drain ordering: the
    /// trailing sub-cadence frames are only acknowledged by the
    /// receiver's FIN-time flush, so draining before sending the FIN
    /// deadlocked such runs.
    #[test]
    fn short_chains_conserve_packets_for_every_family() {
        for family in EngineFamily::ALL {
            let mut spec = ChainSpec::new(family, TrafficMix::Cbr);
            spec.pkts = 2_005;
            spec.routers = 2;
            let report = run_chain(&spec).unwrap();
            assert!(report.violations.is_empty(), "{}: {:?}", family.name(), report.violations);
            assert_eq!(report.parse_drops, 0, "{}", family.name());
            assert!(report.clean(), "{}", family.name());
            assert_eq!(
                report.delivered() + report.engine_dropped(),
                spec.pkts,
                "{}: {:?}",
                family.name(),
                report.drop_reasons
            );
            for class in [RESERVED, BEST_EFFORT] {
                let c = &report.classes[class];
                assert!(c.delivered > 0, "{} class {class} delivered nothing", family.name());
                assert!(c.latency.percentile_ns(0.5) > 0, "{}", family.name());
            }
        }
    }

    /// Multiple shards behind one socket router still conserve exactly.
    #[test]
    fn sharded_chain_conserves_with_bursty_mix() {
        let mut spec = ChainSpec::new(EngineFamily::Hummingbird, TrafficMix::BurstyOnOff);
        spec.pkts = 2_002;
        spec.routers = 2;
        spec.shards = 2;
        let report = run_chain(&spec).unwrap();
        assert!(report.clean(), "{:?}", report.violations);
        assert_eq!(report.delivered() + report.engine_dropped(), spec.pkts);
    }
}
