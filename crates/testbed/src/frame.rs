//! Datagram and payload framing of the real-socket testbed.
//!
//! Every UDP datagram on a testbed link is one frame: a single kind
//! byte followed, for data frames, by one serialized Hummingbird packet
//! exactly as [`hummingbird_wire`] emits it. There is no length field —
//! UDP preserves datagram boundaries, and the packet's own headers
//! declare its length ([`PacketView::wire_len`]), so a receiver can (and
//! does) detect truncation by comparing the two.
//!
//! The first [`PAYLOAD_HDR_LEN`] bytes of every packet's L4 payload
//! carry the measurement header the sink and routers read:
//! `[flow_id: u32][seq: u64][stamp_ns: u64]`, all little-endian. The
//! flow id attributes every packet (and every engine drop) to its flow
//! and therefore its traffic class; the per-flow sequence number makes
//! loss and duplication countable; the stamp — nanoseconds since the
//! run's shared clock epoch — is what the sink turns into end-to-end
//! latency. Engines never touch the payload, so the header survives the
//! whole chain byte-identically.
//!
//! [`PacketView::wire_len`]: hummingbird_wire::PacketView::wire_len

/// Kind byte of a data frame (one serialized packet follows).
pub const KIND_DATA: u8 = 0xD7;
/// Kind byte of the end-of-run marker: sent once, after every data
/// frame on the link has been acknowledged, and forwarded hop by hop so
/// every node drains in order before reporting.
pub const KIND_FIN: u8 = 0xF1;

/// Bytes of the measurement header at the front of every L4 payload.
pub const PAYLOAD_HDR_LEN: usize = 4 + 8 + 8;

/// The measurement header carried at the front of every payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PayloadHeader {
    /// Flow the packet belongs to (index into the run's flow table).
    pub flow_id: u32,
    /// Per-flow sequence number, starting at 0.
    pub seq: u64,
    /// Send stamp: nanoseconds since the run's shared clock epoch.
    pub stamp_ns: u64,
}

impl PayloadHeader {
    /// Writes the header into the first [`PAYLOAD_HDR_LEN`] bytes of
    /// `payload`.
    ///
    /// # Panics
    /// When `payload` is shorter than [`PAYLOAD_HDR_LEN`].
    pub fn write(&self, payload: &mut [u8]) {
        payload[0..4].copy_from_slice(&self.flow_id.to_le_bytes());
        payload[4..12].copy_from_slice(&self.seq.to_le_bytes());
        payload[12..20].copy_from_slice(&self.stamp_ns.to_le_bytes());
    }

    /// Reads the header back from a payload; `None` when the payload is
    /// too short to carry one.
    pub fn read(payload: &[u8]) -> Option<PayloadHeader> {
        if payload.len() < PAYLOAD_HDR_LEN {
            return None;
        }
        Some(PayloadHeader {
            flow_id: u32::from_le_bytes(payload[0..4].try_into().ok()?),
            seq: u64::from_le_bytes(payload[4..12].try_into().ok()?),
            stamp_ns: u64::from_le_bytes(payload[12..20].try_into().ok()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_header_roundtrips() {
        let hdr = PayloadHeader { flow_id: 7, seq: 123_456, stamp_ns: u64::MAX - 1 };
        let mut buf = [0u8; PAYLOAD_HDR_LEN + 3];
        hdr.write(&mut buf);
        assert_eq!(PayloadHeader::read(&buf), Some(hdr));
        // Too short to carry a header: None, never a panic.
        assert_eq!(PayloadHeader::read(&buf[..PAYLOAD_HDR_LEN - 1]), None);
        assert_eq!(PayloadHeader::read(&[]), None);
    }
}
