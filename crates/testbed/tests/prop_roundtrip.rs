//! Wire-format properties of the datagrams the testbed actually sends.
//!
//! The testbed's conservation accounting rests on two wire-level
//! guarantees, checked here as properties over every engine family,
//! both path kinds (flyover-credentialed and plain best-effort), and a
//! sweep of payload sizes and chain lengths:
//!
//! 1. **Roundtrip** — a gateway-serialized datagram reparses through
//!    `PacketView::new_checked`, its declared length matches the
//!    datagram length exactly (the testbed's truncation check), its
//!    measurement payload survives untouched, and an owned
//!    [`Packet::parse`] → `to_bytes` cycle is byte-identical.
//! 2. **Robustness** — truncating a datagram at *any* boundary is
//!    always detected (checked parse fails, or the declared/actual
//!    length check fires, or the measurement header is gone), and
//!    corrupting any single byte never panics the parse path: the frame
//!    is either cleanly rejected or structurally intact for the engine
//!    to veto — exactly the `parse drop, never panic` contract the
//!    socket routers rely on.

use hummingbird_dataplane::RouterConfig;
use hummingbird_netsim::{EngineFamily, LinearTopology, LinkSpec};
use hummingbird_testbed::{PayloadHeader, PAYLOAD_HDR_LEN, RESERVED_BW_KBPS};
use hummingbird_wire::{IsdAs, Packet, PacketView};
use proptest::prelude::*;

const EPOCH_S: u64 = 1_700_000_000;
const EPOCH_MS: u64 = EPOCH_S * 1000;
const EPOCH_NS: u64 = EPOCH_S * 1_000_000_000;

/// One testbed-shaped datagram: a packet from the shared topology's
/// generator, flyover-credentialed at every hop when `flyover`, with the
/// measurement header at the front of the payload.
fn testbed_packet(
    family: EngineFamily,
    flyover: bool,
    routers: usize,
    payload_len: usize,
    flow_id: u32,
    seq: u64,
) -> Vec<u8> {
    let mut topo =
        LinearTopology::build(routers, LinkSpec::default(), EPOCH_NS, RouterConfig::default());
    let src = IsdAs::new(1, 0x100 + u64::from(flow_id));
    let mut gen = topo.make_generator(src, IsdAs::new(2, 0xB));
    if flyover {
        for hop in 0..routers {
            let cred = topo.make_family_credential(family, hop, src, RESERVED_BW_KBPS, EPOCH_S);
            gen.attach_reservation(hop, cred).expect("hop interfaces match");
        }
    }
    let mut payload = vec![0u8; payload_len];
    PayloadHeader { flow_id, seq, stamp_ns: seq.wrapping_mul(977) }.write(&mut payload);
    gen.generate(&payload, EPOCH_MS).expect("generate")
}

/// The socket routers' structural validation: checked view, declared
/// length == datagram length, readable measurement header.
fn frame_parses(pkt: &[u8]) -> bool {
    match PacketView::new_checked(pkt) {
        Err(_) => false,
        Ok(view) => {
            view.wire_len().map(|l| l == pkt.len()).unwrap_or(false)
                && view.payload().map(|p| PayloadHeader::read(p).is_some()).unwrap_or(false)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every family × {flyover, plain} serializes datagrams that reparse
    /// byte-identically, with the measurement payload intact.
    #[test]
    fn testbed_datagrams_roundtrip_byte_identically(
        family_ix in 0usize..4,
        flyover in any::<bool>(),
        routers in 1usize..4,
        payload_extra in 0usize..400,
        flow_id in 0u32..1000,
        seq in 0u64..1_000_000,
    ) {
        let family = EngineFamily::ALL[family_ix];
        let payload_len = PAYLOAD_HDR_LEN + payload_extra;
        let pkt = testbed_packet(family, flyover, routers, payload_len, flow_id, seq);

        // The router-side validation accepts the untouched datagram.
        prop_assert!(frame_parses(&pkt), "{}: fresh datagram must validate", family.name());

        // Checked view: declared length is exact, payload untouched.
        let view = PacketView::new_checked(pkt.as_slice()).expect("checked");
        prop_assert_eq!(view.wire_len().expect("wire_len"), pkt.len());
        let payload = view.payload().expect("payload");
        prop_assert_eq!(payload.len(), payload_len);
        let hdr = PayloadHeader::read(payload).expect("measurement header");
        prop_assert_eq!(hdr.flow_id, flow_id);
        prop_assert_eq!(hdr.seq, seq);

        // Owned parse → re-serialize is byte-identical.
        let owned = Packet::parse(&pkt).expect("owned parse");
        prop_assert_eq!(owned.to_bytes().expect("re-serialize"), pkt);
    }

    /// Truncation at any boundary is detected; corrupting any one byte
    /// never panics the parse path.
    #[test]
    fn truncation_is_detected_and_corruption_never_panics(
        family_ix in 0usize..4,
        flyover in any::<bool>(),
        payload_extra in 0usize..200,
        cut_frac in 0.0f64..1.0,
        corrupt_frac in 0.0f64..1.0,
        corrupt_bits in 1u8..=255,
    ) {
        let family = EngineFamily::ALL[family_ix];
        let pkt = testbed_packet(
            family,
            flyover,
            2,
            PAYLOAD_HDR_LEN + payload_extra,
            7,
            42,
        );

        // Any proper prefix fails structural validation (truncated
        // headers fail `new_checked`; a truncated payload fails the
        // declared-length or measurement-header check).
        let cut = (pkt.len() as f64 * cut_frac) as usize;
        prop_assert!(cut < pkt.len());
        prop_assert!(
            !frame_parses(&pkt[..cut]),
            "{}: truncation to {} of {} bytes must be detected",
            family.name(), cut, pkt.len()
        );

        // A single corrupted byte must never panic: either the frame is
        // rejected here, or it stays structurally valid and the engine's
        // MAC/timestamp checks get their turn. Both outcomes keep every
        // datagram accounted for.
        let mut corrupted = pkt.clone();
        let at = (pkt.len() as f64 * corrupt_frac) as usize % pkt.len();
        corrupted[at] ^= corrupt_bits;
        let _ = frame_parses(&corrupted);

        // Garbage that is not a packet at all is rejected, not panicked on.
        prop_assert!(!frame_parses(&[]));
        prop_assert!(!frame_parses(&[corrupt_bits]));
    }
}
