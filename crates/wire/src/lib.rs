//! # hummingbird-wire
//!
//! Wire formats for the Hummingbird SCION path type (paper Appendix A),
//! implemented in the smoltcp style: owned `Repr`-like structs with
//! symmetric `parse`/`emit`, strict validation, and no `unsafe`.
//!
//! Contents:
//! * [`common`] — SCION common and address headers.
//! * [`meta`] — the Hummingbird path meta header (Fig. 7) with the new
//!   `BaseTimestamp` / `MillisTimestamp` / `Counter` fields.
//! * [`hopfield`] — info fields (Fig. 8), hop fields (Fig. 9) and flyover
//!   hop fields (Fig. 10).
//! * [`path`] — the complete path header: segment bookkeeping, offset
//!   arithmetic (Eq. 5), pointer advancement and path reversal (App. A.8).
//! * [`packet`] — full packets plus a builder.
//! * [`bwcls`] — the 10-bit bandwidth float codec (App. A.4).
//! * [`scion_mac`] — standard SCION hop-field MACs and SegID chaining.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bwcls;
pub mod common;
pub mod error;
pub mod hopfield;
pub mod meta;
pub mod packet;
pub mod path;
pub mod scion_mac;
pub mod scion_path;
pub mod view;

pub use common::{AddressHeader, CommonHeader, IsdAs, PATH_TYPE_HUMMINGBIRD, PATH_TYPE_SCION};
pub use error::{Result, WireError};
pub use hopfield::{FlyoverHopField, HopField, HopFlags, InfoField};
pub use meta::PathMetaHdr;
pub use packet::{Packet, PacketBuilder};
pub use path::{HummingbirdPath, PathField};
pub use scion_mac::{update_seg_id, HopMacInput, HopMacKey};
pub use scion_path::{ScionPath, ScionPathMeta};
pub use view::PacketView;
