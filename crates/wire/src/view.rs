//! Zero-copy packet views in the smoltcp idiom: a `PacketView<T:
//! AsRef<[u8]>>` wraps a buffer, `new_checked` validates structural
//! invariants once, and field accessors read (or, with `AsMut`, write)
//! directly at wire offsets without allocating.
//!
//! The owned `Repr` types in [`crate::packet`]/[`crate::path`] are the
//! construction-side API; views are the inspection/forwarding-side API —
//! what a border router uses on the hot path.

use crate::common::{AddressHeader, CommonHeader, IsdAs, ADDR_HDR_LEN, COMMON_HDR_LEN};
use crate::error::{Result, WireError};
use crate::hopfield::{peek_flyover_bit, FLYOVER_FIELD_LEN, HOP_FIELD_LEN, INFO_FIELD_LEN};
use crate::meta::{PathMetaHdr, META_HDR_LEN};

/// Byte offset of the path header within a packet.
pub const PATH_OFFSET: usize = COMMON_HDR_LEN + ADDR_HDR_LEN;

/// A zero-copy view over a serialized Hummingbird packet.
#[derive(Debug, Clone)]
pub struct PacketView<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> PacketView<T> {
    /// Wraps `buffer` without any checks. Accessors may return errors (or
    /// garbage field values) on malformed input; prefer
    /// [`PacketView::new_checked`].
    pub fn new_unchecked(buffer: T) -> Self {
        PacketView { buffer }
    }

    /// Wraps `buffer`, validating lengths and structural invariants:
    /// header fits, declared `hdr_len` fits, meta header parses, the
    /// current hop field lies within the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let view = Self::new_unchecked(buffer);
        view.check()?;
        Ok(view)
    }

    fn check(&self) -> Result<()> {
        let buf = self.buffer.as_ref();
        let common = CommonHeader::parse(buf)?;
        AddressHeader::parse(buf.get(COMMON_HDR_LEN..).ok_or(WireError::Truncated)?)?;
        let meta = PathMetaHdr::parse(buf.get(PATH_OFFSET..).ok_or(WireError::Truncated)?)?;
        let hdr_len_bytes = 4 * usize::from(common.hdr_len);
        if buf.len() < hdr_len_bytes {
            return Err(WireError::Truncated);
        }
        if u16::from(meta.curr_hf) < meta.total_hf_units() {
            let off = self.current_hop_offset()?;
            let need = if peek_flyover_bit(buf.get(off..).ok_or(WireError::Truncated)?)? {
                FLYOVER_FIELD_LEN
            } else {
                HOP_FIELD_LEN
            };
            if buf.len() < off + need {
                return Err(WireError::Truncated);
            }
        }
        Ok(())
    }

    /// Releases the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Parses the common header.
    pub fn common(&self) -> Result<CommonHeader> {
        CommonHeader::parse(self.buffer.as_ref())
    }

    /// Parses the address header.
    pub fn addr(&self) -> Result<AddressHeader> {
        AddressHeader::parse(
            self.buffer.as_ref().get(COMMON_HDR_LEN..).ok_or(WireError::Truncated)?,
        )
    }

    /// Destination ISD-AS without parsing the whole address header.
    pub fn dst_ia(&self) -> Result<IsdAs> {
        Ok(self.addr()?.dst)
    }

    /// Parses the path meta header.
    pub fn meta(&self) -> Result<PathMetaHdr> {
        PathMetaHdr::parse(self.buffer.as_ref().get(PATH_OFFSET..).ok_or(WireError::Truncated)?)
    }

    /// Byte offset of the info field governing the current hop.
    pub fn current_info_offset(&self) -> Result<usize> {
        let meta = self.meta()?;
        let (seg, _) = meta.segment_of_curr_hf()?;
        Ok(PATH_OFFSET + META_HDR_LEN + INFO_FIELD_LEN * seg)
    }

    /// Byte offset of the current hop field.
    pub fn current_hop_offset(&self) -> Result<usize> {
        let meta = self.meta()?;
        Ok(PATH_OFFSET
            + META_HDR_LEN
            + INFO_FIELD_LEN * meta.num_inf()
            + 4 * usize::from(meta.curr_hf))
    }

    /// Whether the current hop field is a flyover.
    pub fn current_is_flyover(&self) -> Result<bool> {
        let off = self.current_hop_offset()?;
        peek_flyover_bit(self.buffer.as_ref().get(off..).ok_or(WireError::Truncated)?)
    }

    /// Byte offset where the L4 payload starts (= 4·hdr_len).
    pub fn payload_offset(&self) -> Result<usize> {
        Ok(4 * usize::from(self.common()?.hdr_len))
    }

    /// The L4 payload slice.
    pub fn payload(&self) -> Result<&[u8]> {
        let start = self.payload_offset()?;
        let len = usize::from(self.common()?.payload_len);
        self.buffer.as_ref().get(start..start + len).ok_or(WireError::Truncated)
    }

    /// Total on-wire length the headers declare: `4·hdr_len +
    /// payload_len`. [`PacketView::new_checked`] validates the headers
    /// but not the payload tail, so a receiver handed whole datagrams
    /// (the real-socket testbed) compares this against the datagram
    /// length to count payload truncation as a parse drop instead of
    /// failing later in [`PacketView::payload`].
    pub fn wire_len(&self) -> Result<usize> {
        let common = self.common()?;
        Ok(4 * usize::from(common.hdr_len) + usize::from(common.payload_len))
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> PacketView<T> {
    /// Mutable access to the raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Overwrites the SegID of the current segment's info field (the
    /// router's MAC-chaining update).
    pub fn set_current_seg_id(&mut self, seg_id: u16) -> Result<()> {
        let off = self.current_info_offset()? + 2;
        let buf = self.buffer.as_mut();
        buf.get_mut(off..off + 2)
            .ok_or(WireError::Truncated)?
            .copy_from_slice(&seg_id.to_be_bytes());
        Ok(())
    }

    /// Rewrites the path meta header.
    pub fn set_meta(&mut self, meta: &PathMetaHdr) -> Result<()> {
        meta.emit(self.buffer.as_mut().get_mut(PATH_OFFSET..).ok_or(WireError::Truncated)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopfield::{FlyoverHopField, HopField, HopFlags, InfoField};
    use crate::meta::PathMetaHdr;
    use crate::packet::PacketBuilder;
    use crate::path::{HummingbirdPath, PathField};

    fn sample_packet() -> Vec<u8> {
        let hops = vec![
            PathField::Flyover(FlyoverHopField {
                flags: HopFlags { flyover: true, ..Default::default() },
                exp_time: 63,
                cons_ingress: 0,
                cons_egress: 1,
                agg_mac: [1; 6],
                res_id: 9,
                bw: 100,
                res_start_offset: 5,
                res_duration: 60,
            }),
            PathField::Hop(HopField {
                flags: HopFlags::default(),
                exp_time: 63,
                cons_ingress: 2,
                cons_egress: 0,
                mac: [2; 6],
            }),
        ];
        let path = HummingbirdPath {
            meta: PathMetaHdr {
                curr_inf: 0,
                curr_hf: 0,
                seg_len: [8, 0, 0],
                base_ts: 1_700_000_000,
                millis_ts: 3,
                counter: 4,
            },
            info: vec![InfoField { peering: false, cons_dir: true, seg_id: 0xAA55, timestamp: 9 }],
            hops,
        };
        PacketBuilder::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20))
            .build(path, vec![0xCD; 40])
            .unwrap()
            .to_bytes()
            .unwrap()
    }

    #[test]
    fn checked_view_accepts_valid_packets() {
        let bytes = sample_packet();
        let view = PacketView::new_checked(bytes.as_slice()).unwrap();
        assert_eq!(view.dst_ia().unwrap(), IsdAs::new(2, 0x20));
        assert!(view.current_is_flyover().unwrap());
        assert_eq!(view.payload().unwrap(), &[0xCD; 40][..]);
        assert_eq!(view.meta().unwrap().counter, 4);
    }

    #[test]
    fn checked_view_rejects_truncation() {
        let bytes = sample_packet();
        for cut in [1usize, 20, 40, 60] {
            let short = &bytes[..bytes.len().saturating_sub(cut)];
            if short.len() < bytes.len() - 40 {
                // Cut into the header: must fail.
                assert!(PacketView::new_checked(short).is_err(), "cut {cut}");
            }
        }
        assert!(PacketView::new_checked(&bytes[..10]).is_err());
    }

    #[test]
    fn wire_len_matches_serialized_length_and_spots_truncation() {
        let bytes = sample_packet();
        let view = PacketView::new_checked(bytes.as_slice()).unwrap();
        assert_eq!(view.wire_len().unwrap(), bytes.len());
        // A payload-truncated datagram still passes the header checks but
        // declares more bytes than it carries — the receiver's cue.
        let short = &bytes[..bytes.len() - 10];
        let view = PacketView::new_checked(short).unwrap();
        assert!(view.wire_len().unwrap() > short.len());
        assert!(view.payload().is_err());
    }

    #[test]
    fn offsets_match_manual_arithmetic() {
        let bytes = sample_packet();
        let view = PacketView::new_checked(bytes.as_slice()).unwrap();
        // 36 (fixed headers) + 12 (meta) + 8 (one info field) = 56.
        assert_eq!(view.current_hop_offset().unwrap(), 56);
        assert_eq!(view.current_info_offset().unwrap(), 48);
    }

    #[test]
    fn mutable_view_updates_in_place() {
        let mut bytes = sample_packet();
        let mut view = PacketView::new_checked(bytes.as_mut_slice()).unwrap();
        view.set_current_seg_id(0x1234).unwrap();
        let mut meta = view.meta().unwrap();
        meta.curr_hf += 5; // past the flyover
        view.set_meta(&meta).unwrap();
        // Reparse through the owned types and confirm.
        let pkt = crate::packet::Packet::parse(&bytes).unwrap();
        assert_eq!(pkt.path.info[0].seg_id, 0x1234);
        assert_eq!(pkt.path.meta.curr_hf, 5);
    }

    #[test]
    fn view_over_owned_buffer() {
        let view = PacketView::new_checked(sample_packet()).unwrap();
        let inner = view.into_inner();
        assert!(PacketView::new_checked(inner).is_ok());
    }
}
