//! Full Hummingbird packet: common header, address header, path header and
//! payload, with a builder used by the source traffic generator.

use crate::common::{
    AddressHeader, CommonHeader, IsdAs, ADDR_HDR_LEN, COMMON_HDR_LEN, PATH_TYPE_HUMMINGBIRD,
};
use crate::error::{Result, WireError};
use crate::path::HummingbirdPath;

/// Owned representation of a complete packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// SCION common header. `hdr_len` and `payload_len` are maintained by
    /// [`Packet::sync_lengths`] / the builder.
    pub common: CommonHeader,
    /// SCION address header.
    pub addr: AddressHeader,
    /// Hummingbird path header.
    pub path: HummingbirdPath,
    /// L4 payload bytes.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Total header length in bytes (common + address + path).
    pub fn header_len(&self) -> usize {
        COMMON_HDR_LEN + ADDR_HDR_LEN + self.path.byte_len()
    }

    /// Total packet length in bytes.
    pub fn wire_len(&self) -> usize {
        self.header_len() + self.payload.len()
    }

    /// Recomputes `hdr_len` (4-byte units) and `payload_len` in the common
    /// header from the current path and payload.
    pub fn sync_lengths(&mut self) -> Result<()> {
        let hdr = self.header_len();
        debug_assert_eq!(hdr % 4, 0, "all header parts are 4-byte aligned");
        let units = hdr / 4;
        if units > u8::MAX as usize {
            return Err(WireError::FieldRange);
        }
        if self.payload.len() > u16::MAX as usize {
            return Err(WireError::FieldRange);
        }
        self.common.hdr_len = units as u8;
        self.common.payload_len = self.payload.len() as u16;
        Ok(())
    }

    /// The authenticated packet length of Eq. 7d.
    pub fn pkt_len(&self) -> Result<u16> {
        self.common.pkt_len()
    }

    /// Serializes the packet to bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; self.wire_len()];
        self.common.emit(&mut buf)?;
        self.addr.emit(&mut buf[COMMON_HDR_LEN..])?;
        let path_start = COMMON_HDR_LEN + ADDR_HDR_LEN;
        let written = self.path.emit(&mut buf[path_start..])?;
        buf[path_start + written..].copy_from_slice(&self.payload);
        Ok(buf)
    }

    /// Parses a packet from bytes, validating length consistency.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        let common = CommonHeader::parse(buf)?;
        let addr = AddressHeader::parse(&buf[COMMON_HDR_LEN..])?;
        let path_start = COMMON_HDR_LEN + ADDR_HDR_LEN;
        let path = HummingbirdPath::parse(&buf[path_start..])?;
        let hdr_len_bytes = 4 * usize::from(common.hdr_len);
        if hdr_len_bytes != path_start + path.byte_len() {
            return Err(WireError::Malformed);
        }
        let payload_start = hdr_len_bytes;
        let payload_end = payload_start + usize::from(common.payload_len);
        if buf.len() < payload_end {
            return Err(WireError::Truncated);
        }
        Ok(Packet { common, addr, path, payload: buf[payload_start..payload_end].to_vec() })
    }
}

/// Builder for Hummingbird packets.
#[derive(Clone, Debug)]
pub struct PacketBuilder {
    src: IsdAs,
    dst: IsdAs,
    src_host: [u8; 4],
    dst_host: [u8; 4],
    traffic_class: u8,
    flow_id: u32,
    next_hdr: u8,
}

impl PacketBuilder {
    /// Starts a builder for traffic from `src` to `dst`.
    pub fn new(src: IsdAs, dst: IsdAs) -> Self {
        PacketBuilder {
            src,
            dst,
            src_host: [0, 0, 0, 1],
            dst_host: [0, 0, 0, 2],
            traffic_class: 0,
            flow_id: 1,
            next_hdr: 17,
        }
    }

    /// Sets host addresses.
    pub fn hosts(mut self, src_host: [u8; 4], dst_host: [u8; 4]) -> Self {
        self.src_host = src_host;
        self.dst_host = dst_host;
        self
    }

    /// Sets the 20-bit flow ID.
    pub fn flow_id(mut self, flow_id: u32) -> Self {
        self.flow_id = flow_id;
        self
    }

    /// Sets the traffic class byte.
    pub fn traffic_class(mut self, tc: u8) -> Self {
        self.traffic_class = tc;
        self
    }

    /// Assembles a packet with the given path and payload, syncing all
    /// length fields.
    pub fn build(&self, path: HummingbirdPath, payload: Vec<u8>) -> Result<Packet> {
        let mut pkt = Packet {
            common: CommonHeader {
                version: 0,
                traffic_class: self.traffic_class,
                flow_id: self.flow_id,
                next_hdr: self.next_hdr,
                hdr_len: 0,
                payload_len: 0,
                path_type: PATH_TYPE_HUMMINGBIRD,
            },
            addr: AddressHeader {
                dst: self.dst,
                src: self.src,
                dst_host: self.dst_host,
                src_host: self.src_host,
            },
            path,
            payload,
        };
        pkt.sync_lengths()?;
        pkt.path.validate()?;
        Ok(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopfield::{FlyoverHopField, HopField, HopFlags, InfoField};
    use crate::meta::PathMetaHdr;
    use crate::path::PathField;

    fn simple_path(n_hops: usize, flyovers: &[usize]) -> HummingbirdPath {
        let hops: Vec<PathField> = (0..n_hops)
            .map(|i| {
                if flyovers.contains(&i) {
                    PathField::Flyover(FlyoverHopField {
                        flags: HopFlags { flyover: true, ..Default::default() },
                        exp_time: 63,
                        cons_ingress: i as u16,
                        cons_egress: i as u16 + 1,
                        agg_mac: [0; 6],
                        res_id: i as u32,
                        bw: 50,
                        res_start_offset: 0,
                        res_duration: 60,
                    })
                } else {
                    PathField::Hop(HopField {
                        flags: HopFlags::default(),
                        exp_time: 63,
                        cons_ingress: i as u16,
                        cons_egress: i as u16 + 1,
                        mac: [0; 6],
                    })
                }
            })
            .collect();
        let units: u16 = hops.iter().map(|h| u16::from(h.units())).sum();
        HummingbirdPath {
            meta: PathMetaHdr {
                curr_inf: 0,
                curr_hf: 0,
                seg_len: [units as u8, 0, 0],
                base_ts: 1_700_000_000,
                millis_ts: 0,
                counter: 0,
            },
            info: vec![InfoField { peering: false, cons_dir: true, seg_id: 7, timestamp: 99 }],
            hops,
        }
    }

    #[test]
    fn packet_roundtrip() {
        let builder = PacketBuilder::new(IsdAs::new(1, 10), IsdAs::new(2, 20));
        let pkt = builder.build(simple_path(4, &[1, 2]), vec![0xab; 500]).unwrap();
        let bytes = pkt.to_bytes().unwrap();
        assert_eq!(Packet::parse(&bytes).unwrap(), pkt);
    }

    #[test]
    fn lengths_are_synced() {
        let builder = PacketBuilder::new(IsdAs::new(1, 10), IsdAs::new(2, 20));
        let pkt = builder.build(simple_path(3, &[0]), vec![1; 100]).unwrap();
        assert_eq!(usize::from(pkt.common.hdr_len) * 4, pkt.header_len());
        assert_eq!(usize::from(pkt.common.payload_len), 100);
        // Eq. 7d: PktLen covers header + payload.
        assert_eq!(usize::from(pkt.pkt_len().unwrap()), pkt.wire_len());
    }

    #[test]
    fn parse_rejects_inconsistent_hdr_len() {
        let builder = PacketBuilder::new(IsdAs::new(1, 10), IsdAs::new(2, 20));
        let pkt = builder.build(simple_path(2, &[]), vec![0; 10]).unwrap();
        let mut bytes = pkt.to_bytes().unwrap();
        bytes[5] += 1; // corrupt hdr_len
        assert!(Packet::parse(&bytes).is_err());
    }

    #[test]
    fn parse_rejects_truncated_payload() {
        let builder = PacketBuilder::new(IsdAs::new(1, 10), IsdAs::new(2, 20));
        let pkt = builder.build(simple_path(2, &[]), vec![0; 10]).unwrap();
        let bytes = pkt.to_bytes().unwrap();
        assert_eq!(Packet::parse(&bytes[..bytes.len() - 1]), Err(WireError::Truncated));
    }

    #[test]
    fn flyover_overhead_is_8_bytes_per_hop() {
        let builder = PacketBuilder::new(IsdAs::new(1, 10), IsdAs::new(2, 20));
        let plain = builder.build(simple_path(4, &[]), vec![]).unwrap();
        let with_fly = builder.build(simple_path(4, &[0, 1, 2, 3]), vec![]).unwrap();
        // §4: "additional 8 bytes per reserved hop".
        assert_eq!(with_fly.wire_len() - plain.wire_len(), 4 * 8);
    }
}
