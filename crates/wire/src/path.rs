//! The Hummingbird path header: meta header, info fields, and a sequence of
//! standard/flyover hop fields (Appendix A, Fig. 6).

use crate::error::{Result, WireError};
use crate::hopfield::InfoField;
use crate::hopfield::{
    peek_flyover_bit, FlyoverHopField, HopField, FLYOVER_FIELD_LEN, HOP_FIELD_LEN, INFO_FIELD_LEN,
};
use crate::meta::{PathMetaHdr, FLYOVER_UNITS, HF_UNITS, META_HDR_LEN};

/// Maximum number of hop fields in a path (per the SCION spec).
pub const MAX_HOP_FIELDS: usize = 64;
/// Maximum number of info fields / segments.
pub const MAX_INFO_FIELDS: usize = 3;

/// One entry in the hop-field sequence: either a plain SCION hop field or a
/// flyover hop field carrying a reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathField {
    /// Standard 12-byte hop field.
    Hop(HopField),
    /// 20-byte flyover hop field.
    Flyover(FlyoverHopField),
}

impl PathField {
    /// Size in 4-byte units (3 or 5) — the CurrHF increment.
    pub fn units(&self) -> u8 {
        match self {
            PathField::Hop(_) => HF_UNITS,
            PathField::Flyover(_) => FLYOVER_UNITS,
        }
    }

    /// Size in bytes (12 or 20).
    pub fn byte_len(&self) -> usize {
        match self {
            PathField::Hop(_) => HOP_FIELD_LEN,
            PathField::Flyover(_) => FLYOVER_FIELD_LEN,
        }
    }

    /// Whether this hop carries a reservation.
    pub fn is_flyover(&self) -> bool {
        matches!(self, PathField::Flyover(_))
    }

    /// Ingress interface (construction direction).
    pub fn cons_ingress(&self) -> u16 {
        match self {
            PathField::Hop(h) => h.cons_ingress,
            PathField::Flyover(f) => f.cons_ingress,
        }
    }

    /// Egress interface (construction direction).
    pub fn cons_egress(&self) -> u16 {
        match self {
            PathField::Hop(h) => h.cons_egress,
            PathField::Flyover(f) => f.cons_egress,
        }
    }

    /// Hop-field expiry byte.
    pub fn exp_time(&self) -> u8 {
        match self {
            PathField::Hop(h) => h.exp_time,
            PathField::Flyover(f) => f.exp_time,
        }
    }
}

/// Owned representation of a complete Hummingbird path header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HummingbirdPath {
    /// Path meta header.
    pub meta: PathMetaHdr,
    /// One info field per segment (`meta.num_inf()` entries).
    pub info: Vec<InfoField>,
    /// Hop fields in path order.
    pub hops: Vec<PathField>,
}

impl HummingbirdPath {
    /// Total encoded length in bytes.
    pub fn byte_len(&self) -> usize {
        META_HDR_LEN
            + INFO_FIELD_LEN * self.info.len()
            + self.hops.iter().map(|h| h.byte_len()).sum::<usize>()
    }

    /// Validates internal consistency: info-field count matches segments,
    /// hop fields align exactly with segment boundaries, field counts are
    /// within limits.
    pub fn validate(&self) -> Result<()> {
        self.meta.validate()?;
        if self.info.len() != self.meta.num_inf() {
            return Err(WireError::Malformed);
        }
        if self.hops.is_empty() {
            return Err(WireError::EmptyPath);
        }
        if self.hops.len() > MAX_HOP_FIELDS || self.info.len() > MAX_INFO_FIELDS {
            return Err(WireError::TooManyFields);
        }
        // Walk segments, consuming hop fields; each boundary must align.
        let mut hop_iter = self.hops.iter();
        for &seg_len in self.meta.seg_len.iter().take(self.meta.num_inf()) {
            let mut consumed = 0u16;
            while consumed < u16::from(seg_len) {
                let hf = hop_iter.next().ok_or(WireError::Malformed)?;
                consumed += u16::from(hf.units());
            }
            if consumed != u16::from(seg_len) {
                return Err(WireError::Malformed);
            }
        }
        if hop_iter.next().is_some() {
            return Err(WireError::Malformed);
        }
        Ok(())
    }

    /// Parses a full path header from `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        let meta = PathMetaHdr::parse(buf)?;
        let mut offset = META_HDR_LEN;
        let num_inf = meta.num_inf();
        let mut info = Vec::with_capacity(num_inf);
        for _ in 0..num_inf {
            if buf.len() < offset + INFO_FIELD_LEN {
                return Err(WireError::Truncated);
            }
            info.push(InfoField::parse(&buf[offset..])?);
            offset += INFO_FIELD_LEN;
        }
        let total_units = meta.total_hf_units();
        let mut consumed = 0u16;
        let mut hops = Vec::new();
        while consumed < total_units {
            if hops.len() >= MAX_HOP_FIELDS {
                return Err(WireError::TooManyFields);
            }
            if buf.len() <= offset {
                return Err(WireError::Truncated);
            }
            let field = if peek_flyover_bit(&buf[offset..])? {
                let f = FlyoverHopField::parse(&buf[offset..])?;
                offset += FLYOVER_FIELD_LEN;
                consumed += u16::from(FLYOVER_UNITS);
                PathField::Flyover(f)
            } else {
                let h = HopField::parse(&buf[offset..])?;
                offset += HOP_FIELD_LEN;
                consumed += u16::from(HF_UNITS);
                PathField::Hop(h)
            };
            hops.push(field);
        }
        let path = HummingbirdPath { meta, info, hops };
        path.validate()?;
        Ok(path)
    }

    /// Emits the path header into `buf`; returns bytes written.
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize> {
        self.validate()?;
        let needed = self.byte_len();
        if buf.len() < needed {
            return Err(WireError::Truncated);
        }
        self.meta.emit(buf)?;
        let mut offset = META_HDR_LEN;
        for inf in &self.info {
            inf.emit(&mut buf[offset..])?;
            offset += INFO_FIELD_LEN;
        }
        for hop in &self.hops {
            match hop {
                PathField::Hop(h) => {
                    h.emit(&mut buf[offset..])?;
                    offset += HOP_FIELD_LEN;
                }
                PathField::Flyover(f) => {
                    f.emit(&mut buf[offset..])?;
                    offset += FLYOVER_FIELD_LEN;
                }
            }
        }
        debug_assert_eq!(offset, needed);
        Ok(offset)
    }

    /// Index into `hops` of the field starting at `curr_hf` 4-byte units,
    /// or an error if `curr_hf` does not land on a field boundary.
    pub fn hop_index_at(&self, curr_hf: u8) -> Result<usize> {
        let mut units = 0u16;
        for (i, hop) in self.hops.iter().enumerate() {
            if units == u16::from(curr_hf) {
                return Ok(i);
            }
            if units > u16::from(curr_hf) {
                break;
            }
            units += u16::from(hop.units());
        }
        if units == u16::from(curr_hf) && u16::from(curr_hf) == self.meta.total_hf_units() {
            // Pointer one past the end: path fully consumed.
            return Err(WireError::HopOutOfSegment);
        }
        Err(WireError::HopOutOfSegment)
    }

    /// The hop field the meta header currently points at.
    pub fn current_hop(&self) -> Result<&PathField> {
        let idx = self.hop_index_at(self.meta.curr_hf)?;
        Ok(&self.hops[idx])
    }

    /// Advances `CurrHF` past the current hop field (by 3 or 5 units,
    /// Algorithm 4 lines 9-12) and `CurrINF` when crossing a segment
    /// boundary.
    pub fn advance(&mut self) -> Result<()> {
        let hop_units = u16::from(self.current_hop()?.units());
        let new_hf = u16::from(self.meta.curr_hf) + hop_units;
        if new_hf > 255 {
            return Err(WireError::FieldRange);
        }
        self.meta.curr_hf = new_hf as u8;
        // Update CurrINF if the new pointer crossed into the next segment.
        if new_hf < self.meta.total_hf_units() {
            let (seg, _) = self.meta.segment_of_curr_hf()?;
            self.meta.curr_inf = seg as u8;
        }
        Ok(())
    }

    /// Whether the path has been fully traversed.
    pub fn at_end(&self) -> bool {
        u16::from(self.meta.curr_hf) >= self.meta.total_hf_units()
    }

    /// Path reversal (Appendix A.8): reverses hop and info fields, converts
    /// every flyover hop field to a standard hop field (dropping
    /// reservation data), flips construction-direction flags, and resets
    /// the pointers. The result is a valid Hummingbird path without
    /// reservations for the reverse direction.
    pub fn reversed(&self) -> Result<HummingbirdPath> {
        self.validate()?;
        // Group hops by segment so we can reverse segment order too.
        let mut segments: Vec<Vec<HopField>> = Vec::with_capacity(self.info.len());
        let mut hop_iter = self.hops.iter();
        for &seg_len in self.meta.seg_len.iter().take(self.meta.num_inf()) {
            let mut seg = Vec::new();
            let mut consumed = 0u16;
            while consumed < u16::from(seg_len) {
                let hf = hop_iter.next().ok_or(WireError::Malformed)?;
                consumed += u16::from(hf.units());
                let plain = match hf {
                    PathField::Hop(h) => *h,
                    PathField::Flyover(f) => f.to_hop_field(),
                };
                seg.push(plain);
            }
            segments.push(seg);
        }
        segments.reverse();
        for seg in segments.iter_mut() {
            seg.reverse();
        }
        let mut info: Vec<InfoField> = self.info.iter().rev().copied().collect();
        for inf in info.iter_mut() {
            inf.cons_dir = !inf.cons_dir;
        }
        let mut seg_len = [0u8; 3];
        for (i, seg) in segments.iter().enumerate() {
            seg_len[i] = (seg.len() * usize::from(HF_UNITS)) as u8;
        }
        let hops: Vec<PathField> = segments.into_iter().flatten().map(PathField::Hop).collect();
        let meta = PathMetaHdr {
            curr_inf: 0,
            curr_hf: 0,
            seg_len,
            base_ts: self.meta.base_ts,
            millis_ts: self.meta.millis_ts,
            counter: self.meta.counter,
        };
        let path = HummingbirdPath { meta, info, hops };
        path.validate()?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopfield::HopFlags;

    fn hf(ig: u16, eg: u16) -> PathField {
        PathField::Hop(HopField {
            flags: HopFlags::default(),
            exp_time: 63,
            cons_ingress: ig,
            cons_egress: eg,
            mac: [ig as u8, eg as u8, 0, 0, 0, 1],
        })
    }

    fn fly(ig: u16, eg: u16, res_id: u32) -> PathField {
        PathField::Flyover(FlyoverHopField {
            flags: HopFlags { flyover: true, ..Default::default() },
            exp_time: 63,
            cons_ingress: ig,
            cons_egress: eg,
            agg_mac: [res_id as u8, 0, 0, 0, 0, 2],
            res_id,
            bw: 100,
            res_start_offset: 10,
            res_duration: 600,
        })
    }

    /// 2 segments: [fly, hop] (5+3=8 units) and [hop, fly, hop] (3+5+3=11).
    fn sample_path() -> HummingbirdPath {
        HummingbirdPath {
            meta: PathMetaHdr {
                curr_inf: 0,
                curr_hf: 0,
                seg_len: [8, 11, 0],
                base_ts: 1_700_000_000,
                millis_ts: 5,
                counter: 1,
            },
            info: vec![
                InfoField { peering: false, cons_dir: true, seg_id: 0x11, timestamp: 100 },
                InfoField { peering: false, cons_dir: false, seg_id: 0x22, timestamp: 200 },
            ],
            hops: vec![fly(0, 2, 10), hf(3, 0), hf(0, 4), fly(5, 6, 20), hf(7, 0)],
        }
    }

    #[test]
    fn roundtrip() {
        let path = sample_path();
        let mut buf = vec![0u8; path.byte_len()];
        let n = path.emit(&mut buf).unwrap();
        assert_eq!(n, path.byte_len());
        assert_eq!(HummingbirdPath::parse(&buf).unwrap(), path);
    }

    #[test]
    fn byte_len_matches_units() {
        let path = sample_path();
        // 12 (meta) + 2*8 (info) + 20+12+12+20+12 (hops) = 104.
        assert_eq!(path.byte_len(), 104);
        assert_eq!(path.meta.total_hf_units(), 19);
    }

    #[test]
    fn misaligned_segments_rejected() {
        let mut path = sample_path();
        path.meta.seg_len = [7, 12, 0]; // boundary falls inside a field
        assert_eq!(path.validate(), Err(WireError::Malformed));
    }

    #[test]
    fn info_count_mismatch_rejected() {
        let mut path = sample_path();
        path.info.pop();
        assert_eq!(path.validate(), Err(WireError::Malformed));
    }

    #[test]
    fn advance_walks_fields_and_segments() {
        let mut path = sample_path();
        assert!(path.current_hop().unwrap().is_flyover());
        path.advance().unwrap(); // past flyover: curr_hf = 5
        assert_eq!(path.meta.curr_hf, 5);
        assert_eq!(path.meta.curr_inf, 0);
        path.advance().unwrap(); // past hop: curr_hf = 8, crosses into seg 1
        assert_eq!(path.meta.curr_hf, 8);
        assert_eq!(path.meta.curr_inf, 1);
        path.advance().unwrap();
        path.advance().unwrap();
        assert!(!path.at_end());
        path.advance().unwrap();
        assert!(path.at_end());
    }

    #[test]
    fn hop_index_at_rejects_mid_field_pointer() {
        let path = sample_path();
        assert_eq!(path.hop_index_at(0).unwrap(), 0);
        assert_eq!(path.hop_index_at(5).unwrap(), 1);
        assert_eq!(path.hop_index_at(8).unwrap(), 2);
        assert!(path.hop_index_at(4).is_err());
        assert!(path.hop_index_at(19).is_err());
    }

    #[test]
    fn reversal_strips_flyovers_and_reverses_order() {
        let path = sample_path();
        let rev = path.reversed().unwrap();
        assert!(rev.hops.iter().all(|h| !h.is_flyover()));
        assert_eq!(rev.hops.len(), path.hops.len());
        // Reversed segment lengths: seg1 had 3 hops -> 9 units first.
        assert_eq!(rev.meta.seg_len, [9, 6, 0]);
        // First hop of reversed = last hop of original.
        assert_eq!(rev.hops[0].cons_ingress(), 7);
        // Info fields reversed, cons_dir flipped.
        assert_eq!(rev.info[0].seg_id, 0x22);
        assert!(rev.info[0].cons_dir);
        // Reversed path is itself parseable.
        let mut buf = vec![0u8; rev.byte_len()];
        rev.emit(&mut buf).unwrap();
        assert_eq!(HummingbirdPath::parse(&buf).unwrap(), rev);
    }

    #[test]
    fn empty_path_rejected() {
        let path = HummingbirdPath { meta: PathMetaHdr::default(), info: vec![], hops: vec![] };
        assert_eq!(path.validate(), Err(WireError::EmptyPath));
    }
}
