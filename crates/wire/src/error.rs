//! Wire-format error types.

/// Errors raised while parsing or emitting Hummingbird/SCION headers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the header demands.
    Truncated,
    /// A length or offset field is internally inconsistent.
    Malformed,
    /// A field value is outside its legal range.
    FieldRange,
    /// `SegXLen > 0` while `SegYLen == 0` for some `X > Y` (App. A.1).
    SegmentGap,
    /// The current hop-field pointer does not fall inside any segment.
    HopOutOfSegment,
    /// `PayloadLen + 4·HdrLen` overflowed the 16-bit PktLen (Eq. 7d:
    /// "If an overflow occurs ... the packet must be dropped").
    PktLenOverflow,
    /// The path contains no hop fields.
    EmptyPath,
    /// Too many hop fields (max 64) or info fields (max 3).
    TooManyFields,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "buffer truncated",
            WireError::Malformed => "malformed header",
            WireError::FieldRange => "field value out of range",
            WireError::SegmentGap => "segment length gap",
            WireError::HopOutOfSegment => "current hop field outside segments",
            WireError::PktLenOverflow => "PktLen overflow",
            WireError::EmptyPath => "empty path",
            WireError::TooManyFields => "too many info/hop fields",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, WireError>;
