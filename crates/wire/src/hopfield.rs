//! Info fields, hop fields and flyover hop fields (Appendix A.2-A.4).

use crate::error::{Result, WireError};
use hummingbird_crypto::{Tag, BW_ENC_MAX, RES_ID_MAX, TAG_LEN};

/// Info field length in bytes.
pub const INFO_FIELD_LEN: usize = 8;
/// Standard hop field length in bytes.
pub const HOP_FIELD_LEN: usize = 12;
/// Flyover hop field length in bytes.
pub const FLYOVER_FIELD_LEN: usize = 20;

/// Owned representation of an info field (Fig. 8, unchanged from SCION).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InfoField {
    /// Peering flag.
    pub peering: bool,
    /// Construction-direction flag.
    pub cons_dir: bool,
    /// Updatable MAC-chaining accumulator.
    pub seg_id: u16,
    /// Beacon timestamp (Unix seconds).
    pub timestamp: u32,
}

impl InfoField {
    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < INFO_FIELD_LEN {
            return Err(WireError::Truncated);
        }
        Ok(InfoField {
            peering: buf[0] & 0b10 != 0,
            cons_dir: buf[0] & 0b01 != 0,
            seg_id: u16::from_be_bytes([buf[2], buf[3]]),
            timestamp: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        })
    }

    /// Emits into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < INFO_FIELD_LEN {
            return Err(WireError::Truncated);
        }
        buf[0] = (u8::from(self.peering) << 1) | u8::from(self.cons_dir);
        buf[1] = 0; // RSV
        buf[2..4].copy_from_slice(&self.seg_id.to_be_bytes());
        buf[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        Ok(())
    }
}

/// Flag bits shared by hop fields and flyover hop fields (byte 0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HopFlags {
    /// Flyover bit `F`: 1 for [`FlyoverHopField`], 0 for [`HopField`].
    pub flyover: bool,
    /// ConsIngress router alert.
    pub ingress_alert: bool,
    /// ConsEgress router alert.
    pub egress_alert: bool,
}

impl HopFlags {
    fn parse(byte: u8) -> Self {
        HopFlags {
            flyover: byte & 0x80 != 0,
            ingress_alert: byte & 0x02 != 0,
            egress_alert: byte & 0x01 != 0,
        }
    }

    fn emit(&self) -> u8 {
        (u8::from(self.flyover) << 7)
            | (u8::from(self.ingress_alert) << 1)
            | u8::from(self.egress_alert)
    }
}

/// Reads the flyover bit without parsing the whole field — routers use this
/// to decide which processing pipeline a hop takes (Algorithm 2, line 1).
pub fn peek_flyover_bit(buf: &[u8]) -> Result<bool> {
    if buf.is_empty() {
        return Err(WireError::Truncated);
    }
    Ok(buf[0] & 0x80 != 0)
}

/// Owned representation of a standard hop field (Fig. 9, 12 bytes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HopField {
    /// Flag bits (flyover must be false).
    pub flags: HopFlags,
    /// Relative expiry of the hop field (SCION 1-byte encoding).
    pub exp_time: u8,
    /// Ingress interface in construction direction.
    pub cons_ingress: u16,
    /// Egress interface in construction direction.
    pub cons_egress: u16,
    /// 6-byte hop-field MAC.
    pub mac: Tag,
}

impl HopField {
    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < HOP_FIELD_LEN {
            return Err(WireError::Truncated);
        }
        let flags = HopFlags::parse(buf[0]);
        if flags.flyover {
            return Err(WireError::Malformed);
        }
        let mut mac = [0u8; TAG_LEN];
        mac.copy_from_slice(&buf[6..12]);
        Ok(HopField {
            flags,
            exp_time: buf[1],
            cons_ingress: u16::from_be_bytes([buf[2], buf[3]]),
            cons_egress: u16::from_be_bytes([buf[4], buf[5]]),
            mac,
        })
    }

    /// Emits into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < HOP_FIELD_LEN {
            return Err(WireError::Truncated);
        }
        if self.flags.flyover {
            return Err(WireError::Malformed);
        }
        buf[0] = self.flags.emit();
        buf[1] = self.exp_time;
        buf[2..4].copy_from_slice(&self.cons_ingress.to_be_bytes());
        buf[4..6].copy_from_slice(&self.cons_egress.to_be_bytes());
        buf[6..12].copy_from_slice(&self.mac);
        Ok(())
    }
}

/// Owned representation of a flyover hop field (Fig. 10, 20 bytes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlyoverHopField {
    /// Flag bits (flyover must be true).
    pub flags: HopFlags,
    /// Relative expiry of the *hop field* (not the reservation).
    pub exp_time: u8,
    /// Ingress interface in construction direction.
    pub cons_ingress: u16,
    /// Egress interface in construction direction.
    pub cons_egress: u16,
    /// Aggregate MAC: `HopFieldMAC ⊕ FlyoverMAC` (Eq. 6).
    pub agg_mac: Tag,
    /// 22-bit reservation ID.
    pub res_id: u32,
    /// 10-bit encoded reservation bandwidth (see [`crate::bwcls`]).
    pub bw: u16,
    /// Reservation start as offset from `BaseTimestamp`, seconds.
    pub res_start_offset: u16,
    /// Reservation duration, seconds.
    pub res_duration: u16,
}

impl FlyoverHopField {
    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < FLYOVER_FIELD_LEN {
            return Err(WireError::Truncated);
        }
        let flags = HopFlags::parse(buf[0]);
        if !flags.flyover {
            return Err(WireError::Malformed);
        }
        let mut agg_mac = [0u8; TAG_LEN];
        agg_mac.copy_from_slice(&buf[6..12]);
        let packed = u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]);
        Ok(FlyoverHopField {
            flags,
            exp_time: buf[1],
            cons_ingress: u16::from_be_bytes([buf[2], buf[3]]),
            cons_egress: u16::from_be_bytes([buf[4], buf[5]]),
            agg_mac,
            res_id: packed >> 10,
            bw: (packed & 0x3ff) as u16,
            res_start_offset: u16::from_be_bytes([buf[16], buf[17]]),
            res_duration: u16::from_be_bytes([buf[18], buf[19]]),
        })
    }

    /// Emits into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < FLYOVER_FIELD_LEN {
            return Err(WireError::Truncated);
        }
        if !self.flags.flyover {
            return Err(WireError::Malformed);
        }
        if self.res_id > RES_ID_MAX || self.bw > BW_ENC_MAX {
            return Err(WireError::FieldRange);
        }
        buf[0] = self.flags.emit();
        buf[1] = self.exp_time;
        buf[2..4].copy_from_slice(&self.cons_ingress.to_be_bytes());
        buf[4..6].copy_from_slice(&self.cons_egress.to_be_bytes());
        buf[6..12].copy_from_slice(&self.agg_mac);
        let packed = (self.res_id << 10) | u32::from(self.bw);
        buf[12..16].copy_from_slice(&packed.to_be_bytes());
        buf[16..18].copy_from_slice(&self.res_start_offset.to_be_bytes());
        buf[18..20].copy_from_slice(&self.res_duration.to_be_bytes());
        Ok(())
    }

    /// Strips reservation-specific fields, converting to a standard hop
    /// field (used by path reversal, Appendix A.8). The MAC is carried over
    /// verbatim; at the router it has already been replaced by the plain
    /// hop-field MAC before forwarding (Appendix A.7).
    pub fn to_hop_field(&self) -> HopField {
        HopField {
            flags: HopFlags { flyover: false, ..self.flags },
            exp_time: self.exp_time,
            cons_ingress: self.cons_ingress,
            cons_egress: self.cons_egress,
            mac: self.agg_mac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_field_roundtrip() {
        let inf = InfoField { peering: true, cons_dir: false, seg_id: 0xbeef, timestamp: 77 };
        let mut buf = [0u8; INFO_FIELD_LEN];
        inf.emit(&mut buf).unwrap();
        assert_eq!(InfoField::parse(&buf).unwrap(), inf);
    }

    #[test]
    fn hop_field_roundtrip() {
        let hf = HopField {
            flags: HopFlags { flyover: false, ingress_alert: true, egress_alert: false },
            exp_time: 63,
            cons_ingress: 2,
            cons_egress: 5,
            mac: [1, 2, 3, 4, 5, 6],
        };
        let mut buf = [0u8; HOP_FIELD_LEN];
        hf.emit(&mut buf).unwrap();
        assert_eq!(HopField::parse(&buf).unwrap(), hf);
        assert!(!peek_flyover_bit(&buf).unwrap());
    }

    #[test]
    fn flyover_field_roundtrip() {
        let fly = FlyoverHopField {
            flags: HopFlags { flyover: true, ingress_alert: false, egress_alert: true },
            exp_time: 100,
            cons_ingress: 7,
            cons_egress: 9,
            agg_mac: [9, 8, 7, 6, 5, 4],
            res_id: RES_ID_MAX,
            bw: BW_ENC_MAX,
            res_start_offset: 3600,
            res_duration: 900,
        };
        let mut buf = [0u8; FLYOVER_FIELD_LEN];
        fly.emit(&mut buf).unwrap();
        assert_eq!(FlyoverHopField::parse(&buf).unwrap(), fly);
        assert!(peek_flyover_bit(&buf).unwrap());
    }

    #[test]
    fn flyover_bit_mismatch_is_malformed() {
        let mut buf = [0u8; FLYOVER_FIELD_LEN];
        // Flyover bit set but parsed as standard hop field.
        buf[0] = 0x80;
        assert_eq!(HopField::parse(&buf), Err(WireError::Malformed));
        // Flyover bit clear but parsed as flyover field.
        buf[0] = 0;
        assert_eq!(FlyoverHopField::parse(&buf), Err(WireError::Malformed));
    }

    #[test]
    fn res_id_range_enforced() {
        let fly = FlyoverHopField {
            flags: HopFlags { flyover: true, ..Default::default() },
            res_id: RES_ID_MAX + 1,
            ..Default::default()
        };
        let mut buf = [0u8; FLYOVER_FIELD_LEN];
        assert_eq!(fly.emit(&mut buf), Err(WireError::FieldRange));
    }

    #[test]
    fn flyover_to_hop_field_strips_reservation() {
        let fly = FlyoverHopField {
            flags: HopFlags { flyover: true, ingress_alert: true, egress_alert: false },
            exp_time: 10,
            cons_ingress: 1,
            cons_egress: 2,
            agg_mac: [1, 1, 2, 2, 3, 3],
            res_id: 5,
            bw: 6,
            res_start_offset: 7,
            res_duration: 8,
        };
        let hf = fly.to_hop_field();
        assert!(!hf.flags.flyover);
        assert_eq!(hf.cons_ingress, 1);
        assert_eq!(hf.mac, fly.agg_mac);
    }
}
