//! Hummingbird path meta header (Appendix A.1, Fig. 7).
//!
//! A 12-byte header carrying segment bookkeeping plus the three new
//! timestamp fields that drive flyover MACs and freshness checks:
//!
//! ```text
//!  0..4   CurrINF(2) ∥ CurrHF(8) ∥ r(1) ∥ Seg0Len(7) ∥ Seg1Len(7) ∥ Seg2Len(7)
//!  4..8   BaseTimestamp (Unix seconds)
//!  8..10  MillisTimestamp (offset from BaseTimestamp, ms)
//! 10..12  Counter (per-packet uniqueness)
//! ```
//!
//! `CurrHF` counts in 4-byte units: a standard hop field advances it by 3
//! (12 B), a flyover hop field by 5 (20 B). `SegiLen` is also in 4-byte
//! units, so a segment of one flyover + two standard hop fields has
//! `SegLen = 5 + 3 + 3 = 11`.

use crate::error::{Result, WireError};

/// Path meta header length in bytes.
pub const META_HDR_LEN: usize = 12;
/// CurrHF increment for a standard 12-byte hop field.
pub const HF_UNITS: u8 = 3;
/// CurrHF increment for a 20-byte flyover hop field.
pub const FLYOVER_UNITS: u8 = 5;
/// Maximum value of a 7-bit segment length.
pub const SEG_LEN_MAX: u8 = (1 << 7) - 1;

/// Owned representation of the path meta header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathMetaHdr {
    /// Index of the current info field (0-2).
    pub curr_inf: u8,
    /// Offset of the current hop field in 4-byte units.
    pub curr_hf: u8,
    /// Lengths of segments 0-2 in 4-byte units; 0 = absent.
    pub seg_len: [u8; 3],
    /// Unix timestamp base for all offsets in the packet.
    pub base_ts: u32,
    /// Millisecond offset from `base_ts` at send time.
    pub millis_ts: u16,
    /// Per-packet counter; `(base_ts, millis_ts, counter)` must be unique
    /// per source to enable optional duplicate suppression.
    pub counter: u16,
}

impl PathMetaHdr {
    /// Parses from the front of `buf`, validating segment consistency.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < META_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let word = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let hdr = PathMetaHdr {
            curr_inf: (word >> 30) as u8,
            curr_hf: ((word >> 22) & 0xff) as u8,
            seg_len: [((word >> 14) & 0x7f) as u8, ((word >> 7) & 0x7f) as u8, (word & 0x7f) as u8],
            base_ts: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            millis_ts: u16::from_be_bytes([buf[8], buf[9]]),
            counter: u16::from_be_bytes([buf[10], buf[11]]),
        };
        hdr.validate()?;
        Ok(hdr)
    }

    /// Emits into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < META_HDR_LEN {
            return Err(WireError::Truncated);
        }
        self.validate()?;
        let word: u32 = (u32::from(self.curr_inf) << 30)
            | (u32::from(self.curr_hf) << 22)
            | (u32::from(self.seg_len[0]) << 14)
            | (u32::from(self.seg_len[1]) << 7)
            | u32::from(self.seg_len[2]);
        buf[0..4].copy_from_slice(&word.to_be_bytes());
        buf[4..8].copy_from_slice(&self.base_ts.to_be_bytes());
        buf[8..10].copy_from_slice(&self.millis_ts.to_be_bytes());
        buf[10..12].copy_from_slice(&self.counter.to_be_bytes());
        Ok(())
    }

    /// Checks field ranges and the segment-gap rule
    /// (`SegXLen > 0 ∧ SegYLen == 0` for `X > Y` is an error).
    pub fn validate(&self) -> Result<()> {
        if self.curr_inf > 2 {
            return Err(WireError::FieldRange);
        }
        for (i, &len) in self.seg_len.iter().enumerate() {
            if len > SEG_LEN_MAX {
                return Err(WireError::FieldRange);
            }
            if len > 0 && self.seg_len[..i].contains(&0) {
                return Err(WireError::SegmentGap);
            }
        }
        Ok(())
    }

    /// Number of present info fields (`NumINF`).
    pub fn num_inf(&self) -> usize {
        self.seg_len.iter().take_while(|&&l| l > 0).count()
    }

    /// Total path length in 4-byte units (sum of segment lengths).
    pub fn total_hf_units(&self) -> u16 {
        self.seg_len.iter().map(|&l| u16::from(l)).sum()
    }

    /// Byte offset of the current info field relative to the start of the
    /// path header (Eq. 5a): `12 + 8·CurrINF`.
    pub fn info_field_offset(&self) -> usize {
        META_HDR_LEN + 8 * usize::from(self.curr_inf)
    }

    /// Byte offset of the current hop field relative to the start of the
    /// path header (Eq. 5b): `12 + 8·NumINF + 4·CurrHF`.
    pub fn hop_field_offset(&self) -> usize {
        META_HDR_LEN + 8 * self.num_inf() + 4 * usize::from(self.curr_hf)
    }

    /// Index of the info field whose segment contains `curr_hf`, together
    /// with the unit offset of that segment's start.
    pub fn segment_of_curr_hf(&self) -> Result<(usize, u16)> {
        let mut start = 0u16;
        let hf = u16::from(self.curr_hf);
        for (i, &len) in self.seg_len.iter().enumerate() {
            if len == 0 {
                break;
            }
            let end = start + u16::from(len);
            if hf < end {
                return Ok((i, start));
            }
            start = end;
        }
        Err(WireError::HopOutOfSegment)
    }

    /// An empty path (all `SegLen == 0`), valid only for intra-AS traffic.
    pub fn is_empty_path(&self) -> bool {
        self.seg_len.iter().all(|&l| l == 0)
    }

    /// Absolute send timestamp in milliseconds since the Unix epoch
    /// (`BaseTimestamp ∥ MillisTimestamp` of Algorithm 3, line 12).
    pub fn abs_ts_millis(&self) -> u64 {
        u64::from(self.base_ts) * 1000 + u64::from(self.millis_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PathMetaHdr {
        PathMetaHdr {
            curr_inf: 1,
            curr_hf: 11,
            seg_len: [11, 8, 0],
            base_ts: 1_700_000_000,
            millis_ts: 734,
            counter: 42,
        }
    }

    #[test]
    fn roundtrip() {
        let hdr = sample();
        let mut buf = [0u8; META_HDR_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(PathMetaHdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn segment_gap_rejected() {
        let hdr = PathMetaHdr { seg_len: [0, 3, 0], ..sample() };
        assert_eq!(hdr.validate(), Err(WireError::SegmentGap));
        let hdr = PathMetaHdr { seg_len: [3, 0, 3], ..sample() };
        assert_eq!(hdr.validate(), Err(WireError::SegmentGap));
    }

    #[test]
    fn curr_inf_range() {
        let hdr = PathMetaHdr { curr_inf: 3, ..sample() };
        assert_eq!(hdr.validate(), Err(WireError::FieldRange));
    }

    #[test]
    fn offsets_follow_eq_5() {
        let hdr = sample();
        assert_eq!(hdr.num_inf(), 2);
        assert_eq!(hdr.info_field_offset(), 12 + 8);
        assert_eq!(hdr.hop_field_offset(), 12 + 16 + 44);
    }

    #[test]
    fn segment_lookup() {
        let hdr = sample();
        // curr_hf = 11 is the first unit of segment 1 (segment 0 is 0..11).
        assert_eq!(hdr.segment_of_curr_hf().unwrap(), (1, 11));
        let hdr0 = PathMetaHdr { curr_hf: 10, ..hdr };
        assert_eq!(hdr0.segment_of_curr_hf().unwrap(), (0, 0));
        let out = PathMetaHdr { curr_hf: 19, ..hdr };
        assert_eq!(out.segment_of_curr_hf(), Err(WireError::HopOutOfSegment));
    }

    #[test]
    fn abs_ts_millis_combines_fields() {
        let hdr = sample();
        assert_eq!(hdr.abs_ts_millis(), 1_700_000_000_000 + 734);
    }

    #[test]
    fn empty_path_detection() {
        let hdr = PathMetaHdr { seg_len: [0, 0, 0], curr_hf: 0, curr_inf: 0, ..sample() };
        assert!(hdr.is_empty_path());
        assert!(!sample().is_empty_path());
    }
}
