//! The *standard* SCION path type and conversion from the Hummingbird
//! path type (Appendix A.8, final step).
//!
//! A reversed Hummingbird path (all flyover fields stripped) is already a
//! valid Hummingbird-type path without reservations, but it can be further
//! converted to the regular SCION path type "by replacing the PathMetaHdr
//! with the PathMetaHdr of the regular SCION path type (i.e., removing the
//! timestamps and converting the SegiLen values)". This module implements
//! that conversion so replies can be sent by plain SCION stacks.
//!
//! Standard SCION path meta header (4 bytes):
//!
//! ```text
//! CurrINF(2) ∥ CurrHF(6) ∥ RSV(6) ∥ Seg0Len(6) ∥ Seg1Len(6) ∥ Seg2Len(6)
//! ```
//!
//! where `CurrHF` and `SegiLen` count *hop fields* (12 B each), unlike the
//! Hummingbird header's 4-byte units.

use crate::error::{Result, WireError};
use crate::hopfield::{HopField, InfoField, HOP_FIELD_LEN, INFO_FIELD_LEN};
use crate::meta::HF_UNITS;
use crate::path::HummingbirdPath;

/// Standard SCION path meta header length.
pub const SCION_META_LEN: usize = 4;

/// Owned representation of the standard SCION path meta header.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScionPathMeta {
    /// Current info field index (0-2).
    pub curr_inf: u8,
    /// Current hop field index (0-63), counting hop fields.
    pub curr_hf: u8,
    /// Hop fields per segment (0 = absent).
    pub seg_len: [u8; 3],
}

impl ScionPathMeta {
    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < SCION_META_LEN {
            return Err(WireError::Truncated);
        }
        let w = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
        let meta = ScionPathMeta {
            curr_inf: (w >> 30) as u8,
            curr_hf: ((w >> 24) & 0x3f) as u8,
            seg_len: [((w >> 12) & 0x3f) as u8, ((w >> 6) & 0x3f) as u8, (w & 0x3f) as u8],
        };
        meta.validate()?;
        Ok(meta)
    }

    /// Emits into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < SCION_META_LEN {
            return Err(WireError::Truncated);
        }
        self.validate()?;
        let w: u32 = (u32::from(self.curr_inf) << 30)
            | (u32::from(self.curr_hf & 0x3f) << 24)
            | (u32::from(self.seg_len[0]) << 12)
            | (u32::from(self.seg_len[1]) << 6)
            | u32::from(self.seg_len[2]);
        buf[0..4].copy_from_slice(&w.to_be_bytes());
        Ok(())
    }

    /// Field-range and segment-gap validation.
    pub fn validate(&self) -> Result<()> {
        if self.curr_inf > 2 || self.curr_hf > 63 {
            return Err(WireError::FieldRange);
        }
        for (i, &len) in self.seg_len.iter().enumerate() {
            if len > 63 {
                return Err(WireError::FieldRange);
            }
            if len > 0 && self.seg_len[..i].contains(&0) {
                return Err(WireError::SegmentGap);
            }
        }
        Ok(())
    }

    /// Number of info fields present.
    pub fn num_inf(&self) -> usize {
        self.seg_len.iter().take_while(|&&l| l > 0).count()
    }
}

/// A standard SCION path: meta + info fields + plain hop fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScionPath {
    /// Meta header.
    pub meta: ScionPathMeta,
    /// Info fields.
    pub info: Vec<InfoField>,
    /// Hop fields (12 B each).
    pub hops: Vec<HopField>,
}

impl ScionPath {
    /// Encoded length in bytes.
    pub fn byte_len(&self) -> usize {
        SCION_META_LEN + INFO_FIELD_LEN * self.info.len() + HOP_FIELD_LEN * self.hops.len()
    }

    /// Parses a full standard path.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        let meta = ScionPathMeta::parse(buf)?;
        let mut off = SCION_META_LEN;
        let mut info = Vec::with_capacity(meta.num_inf());
        for _ in 0..meta.num_inf() {
            info.push(InfoField::parse(buf.get(off..).ok_or(WireError::Truncated)?)?);
            off += INFO_FIELD_LEN;
        }
        let total_hops: usize = meta.seg_len.iter().map(|&l| usize::from(l)).sum();
        let mut hops = Vec::with_capacity(total_hops);
        for _ in 0..total_hops {
            hops.push(HopField::parse(buf.get(off..).ok_or(WireError::Truncated)?)?);
            off += HOP_FIELD_LEN;
        }
        Ok(ScionPath { meta, info, hops })
    }

    /// Emits the path; returns bytes written.
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize> {
        if buf.len() < self.byte_len() {
            return Err(WireError::Truncated);
        }
        self.meta.emit(buf)?;
        let mut off = SCION_META_LEN;
        for inf in &self.info {
            inf.emit(&mut buf[off..])?;
            off += INFO_FIELD_LEN;
        }
        for hf in &self.hops {
            hf.emit(&mut buf[off..])?;
            off += HOP_FIELD_LEN;
        }
        Ok(off)
    }
}

impl HummingbirdPath {
    /// Converts to the standard SCION path type (App. A.8): only valid
    /// once every flyover field has been stripped (e.g. after
    /// [`HummingbirdPath::reversed`]). The timestamps of the Hummingbird
    /// meta header are discarded and `SegiLen` is converted from 4-byte
    /// units to hop-field counts.
    pub fn to_standard_scion(&self) -> Result<ScionPath> {
        self.validate()?;
        if self.hops.iter().any(|h| h.is_flyover()) {
            return Err(WireError::Malformed);
        }
        let mut seg_len = [0u8; 3];
        for (i, &units) in self.meta.seg_len.iter().enumerate() {
            debug_assert_eq!(units % HF_UNITS, 0);
            seg_len[i] = units / HF_UNITS;
        }
        if u16::from(self.meta.curr_hf) % u16::from(HF_UNITS) != 0 {
            return Err(WireError::Malformed);
        }
        let meta = ScionPathMeta {
            curr_inf: self.meta.curr_inf,
            curr_hf: self.meta.curr_hf / HF_UNITS,
            seg_len,
        };
        let hops = self
            .hops
            .iter()
            .map(|h| match h {
                crate::path::PathField::Hop(hf) => *hf,
                crate::path::PathField::Flyover(_) => unreachable!("checked above"),
            })
            .collect();
        Ok(ScionPath { meta, info: self.info.clone(), hops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopfield::{FlyoverHopField, HopFlags};
    use crate::meta::PathMetaHdr;
    use crate::path::{HummingbirdPath, PathField};

    fn hbird_path(with_flyover: bool) -> HummingbirdPath {
        let mut hops = vec![
            PathField::Hop(HopField {
                flags: HopFlags::default(),
                exp_time: 63,
                cons_ingress: 0,
                cons_egress: 1,
                mac: [1; 6],
            }),
            PathField::Hop(HopField {
                flags: HopFlags::default(),
                exp_time: 63,
                cons_ingress: 2,
                cons_egress: 0,
                mac: [2; 6],
            }),
        ];
        let mut units = 6u8;
        if with_flyover {
            hops.insert(
                1,
                PathField::Flyover(FlyoverHopField {
                    flags: HopFlags { flyover: true, ..Default::default() },
                    exp_time: 63,
                    cons_ingress: 9,
                    cons_egress: 10,
                    agg_mac: [3; 6],
                    res_id: 7,
                    bw: 100,
                    res_start_offset: 0,
                    res_duration: 60,
                }),
            );
            units += 5;
        }
        HummingbirdPath {
            meta: PathMetaHdr {
                curr_inf: 0,
                curr_hf: 0,
                seg_len: [units, 0, 0],
                base_ts: 1_700_000_000,
                millis_ts: 1,
                counter: 2,
            },
            info: vec![InfoField { peering: false, cons_dir: true, seg_id: 5, timestamp: 100 }],
            hops,
        }
    }

    #[test]
    fn scion_meta_roundtrip() {
        let m = ScionPathMeta { curr_inf: 1, curr_hf: 5, seg_len: [3, 4, 0] };
        let mut buf = [0u8; 4];
        m.emit(&mut buf).unwrap();
        assert_eq!(ScionPathMeta::parse(&buf).unwrap(), m);
    }

    #[test]
    fn scion_meta_rejects_gaps_and_ranges() {
        assert!(ScionPathMeta { curr_inf: 3, curr_hf: 0, seg_len: [1, 0, 0] }.validate().is_err());
        assert!(ScionPathMeta { curr_inf: 0, curr_hf: 0, seg_len: [0, 1, 0] }.validate().is_err());
        assert!(ScionPathMeta { curr_inf: 0, curr_hf: 64, seg_len: [1, 0, 0] }.validate().is_err());
    }

    #[test]
    fn conversion_after_reversal_roundtrips() {
        // Hummingbird path with a flyover -> reverse -> standard SCION.
        let path = hbird_path(true);
        let reversed = path.reversed().unwrap();
        let scion = reversed.to_standard_scion().unwrap();
        assert_eq!(scion.hops.len(), 3);
        assert_eq!(scion.meta.seg_len, [3, 0, 0]);
        // Wire roundtrip of the converted path.
        let mut buf = vec![0u8; scion.byte_len()];
        scion.emit(&mut buf).unwrap();
        assert_eq!(ScionPath::parse(&buf).unwrap(), scion);
        // 4-byte meta: converted path is 8 bytes shorter than the
        // Hummingbird encoding of the same reversed path.
        assert_eq!(scion.byte_len() + 8, reversed.byte_len());
    }

    #[test]
    fn conversion_rejects_live_flyovers() {
        let path = hbird_path(true);
        assert_eq!(path.to_standard_scion().unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn conversion_without_flyovers_is_direct() {
        let path = hbird_path(false);
        let scion = path.to_standard_scion().unwrap();
        assert_eq!(scion.hops.len(), 2);
        assert_eq!(scion.info, path.info);
    }

    #[test]
    fn truncated_scion_path_rejected() {
        let path = hbird_path(false).to_standard_scion().unwrap();
        let mut buf = vec![0u8; path.byte_len()];
        path.emit(&mut buf).unwrap();
        assert!(ScionPath::parse(&buf[..buf.len() - 1]).is_err());
    }
}
