//! Standard SCION hop-field MAC computation and SegID chaining.
//!
//! Every SCION hop field carries a 6-byte MAC computed by the AS that
//! created it during beaconing, keyed with the AS-local forwarding key
//! `K_i`. Hummingbird reuses this mechanism unchanged (Algorithm 4) and
//! XORs its flyover MAC on top (Eq. 6). The MAC input is the 16-byte block
//! of the SCION header specification:
//!
//! ```text
//!  0..2   zero        2..4  SegID (β_i)
//!  4..8   Timestamp (from the info field)
//!  8      zero        9     ExpTime
//! 10..12  ConsIngress 12..14 ConsEgress
//! 14..16  zero
//! ```
//!
//! The chaining rule is `β_{i+1} = β_i ⊕ MAC_i[0..2]`, which routers apply
//! as the "update SegID" step (Algorithm 4, line 8).

use hummingbird_crypto::cmac::Cmac;
use hummingbird_crypto::{Tag, TAG_LEN};

/// An AS-local hop-field MAC key (`K_i` in the paper's algorithms).
#[derive(Clone)]
pub struct HopMacKey {
    cmac: Cmac,
}

impl std::fmt::Debug for HopMacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HopMacKey {{ .. }}")
    }
}

/// The per-hop inputs to the hop-field MAC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HopMacInput {
    /// Current SegID accumulator (β).
    pub seg_id: u16,
    /// Info-field timestamp.
    pub timestamp: u32,
    /// Hop-field expiry byte.
    pub exp_time: u8,
    /// Ingress interface (construction direction).
    pub cons_ingress: u16,
    /// Egress interface (construction direction).
    pub cons_egress: u16,
}

impl HopMacInput {
    /// Serializes to the 16-byte MAC input block.
    pub fn to_block(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[2..4].copy_from_slice(&self.seg_id.to_be_bytes());
        b[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        b[9] = self.exp_time;
        b[10..12].copy_from_slice(&self.cons_ingress.to_be_bytes());
        b[12..14].copy_from_slice(&self.cons_egress.to_be_bytes());
        b
    }
}

impl HopMacKey {
    /// Creates a key from raw bytes.
    pub fn new(key: [u8; 16]) -> Self {
        HopMacKey { cmac: Cmac::new(&key) }
    }

    /// Computes the 6-byte hop-field MAC.
    pub fn hop_mac(&self, input: &HopMacInput) -> Tag {
        let full = self.cmac.mac(&input.to_block());
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&full[..TAG_LEN]);
        tag
    }
}

/// Applies the SegID chaining rule: `β' = β ⊕ MAC[0..2]`.
pub fn update_seg_id(seg_id: u16, mac: &Tag) -> u16 {
    seg_id ^ u16::from_be_bytes([mac[0], mac[1]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> HopMacInput {
        HopMacInput {
            seg_id: 0x1234,
            timestamp: 1_700_000_000,
            exp_time: 63,
            cons_ingress: 2,
            cons_egress: 5,
        }
    }

    #[test]
    fn block_layout() {
        let input = HopMacInput {
            seg_id: 0xAABB,
            timestamp: 0x01020304,
            exp_time: 0xCC,
            cons_ingress: 0x0506,
            cons_egress: 0x0708,
        };
        let b = input.to_block();
        assert_eq!(b[0..2], [0, 0]);
        assert_eq!(b[2..4], [0xAA, 0xBB]);
        assert_eq!(b[4..8], [1, 2, 3, 4]);
        assert_eq!(b[8], 0);
        assert_eq!(b[9], 0xCC);
        assert_eq!(b[10..12], [5, 6]);
        assert_eq!(b[12..14], [7, 8]);
        assert_eq!(b[14..16], [0, 0]);
    }

    #[test]
    fn mac_depends_on_every_field() {
        let key = HopMacKey::new([7u8; 16]);
        let base = sample_input();
        let m = key.hop_mac(&base);
        for variant in [
            HopMacInput { seg_id: 0x1235, ..base },
            HopMacInput { timestamp: base.timestamp + 1, ..base },
            HopMacInput { exp_time: 64, ..base },
            HopMacInput { cons_ingress: 3, ..base },
            HopMacInput { cons_egress: 6, ..base },
        ] {
            assert_ne!(key.hop_mac(&variant), m, "{variant:?}");
        }
    }

    #[test]
    fn seg_id_chaining_is_involutive() {
        let mac = [0xde, 0xad, 0, 0, 0, 0];
        let beta = 0x1111;
        let next = update_seg_id(beta, &mac);
        assert_eq!(update_seg_id(next, &mac), beta);
        assert_eq!(next, 0x1111 ^ 0xdead);
    }

    #[test]
    fn different_keys_different_macs() {
        let a = HopMacKey::new([1u8; 16]);
        let b = HopMacKey::new([2u8; 16]);
        assert_ne!(a.hop_mac(&sample_input()), b.hop_mac(&sample_input()));
    }
}
