//! The 10-bit bandwidth field codec (Appendix A.4).
//!
//! The flyover hop field carries the reserved bandwidth in 10 bits encoded
//! like a tiny unsigned float: 5 bits of exponent `e` and 5 bits of
//! significand `s`, decoding to
//!
//! ```text
//! value = s                       if e == 0
//! value = (32 + s) << (e - 1)     otherwise
//! ```
//!
//! which covers `0 ..= (32+31) << 30` (almost 2^36) with even spacing inside
//! each octave. The paper expresses bandwidth in kbps at this layer; with
//! kbps units the top of the range is ~67 Tbps.

/// Maximum raw encoded value (10 bits).
pub const ENC_MAX: u16 = (1 << 10) - 1;
/// Maximum decodable bandwidth value.
pub const VALUE_MAX: u64 = 63u64 << 30;

/// Decodes a 10-bit bandwidth class to its value.
///
/// Values above 10 bits are masked (the wire field cannot carry them).
pub fn decode(enc: u16) -> u64 {
    let enc = enc & ENC_MAX;
    let exponent = (enc >> 5) as u64;
    let significand = (enc & 0x1f) as u64;
    if exponent == 0 {
        significand
    } else {
        (32 + significand) << (exponent - 1)
    }
}

/// Encodes `value`, rounding **down** to the nearest representable value.
///
/// Used when granting reservations: an AS must never authorize more
/// bandwidth on the wire than was purchased. Returns `None` if `value`
/// exceeds [`VALUE_MAX`].
pub fn encode_floor(value: u64) -> Option<u16> {
    if value > VALUE_MAX {
        return None;
    }
    if value < 32 {
        return Some(value as u16);
    }
    // Find the octave: largest e >= 1 with (32 << (e-1)) <= value.
    let msb = 63 - value.leading_zeros() as u64; // value >= 32 so msb >= 5
    let exponent = msb - 4; // (32+s) << (e-1) spans [32<<(e-1), 63<<(e-1)]
    let significand = (value >> (exponent - 1)) - 32;
    debug_assert!(significand < 32);
    Some(((exponent as u16) << 5) | significand as u16)
}

/// Encodes `value`, rounding **up** to the nearest representable value.
///
/// Used when requesting reservations: a buyer rounding up never receives
/// less than requested. Returns `None` if the rounded value would exceed
/// [`VALUE_MAX`].
pub fn encode_ceil(value: u64) -> Option<u16> {
    let enc = encode_floor(value)?;
    if decode(enc) == value {
        return Some(enc);
    }
    if enc >= ENC_MAX {
        return None;
    }
    Some(enc + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_spec_examples() {
        // e == 0: value == significand.
        assert_eq!(decode(0), 0);
        assert_eq!(decode(31), 31);
        // e == 1: (32 + s) << 0.
        assert_eq!(decode(1 << 5), 32);
        assert_eq!(decode((1 << 5) | 31), 63);
        // e == 2: (32 + s) << 1.
        assert_eq!(decode(2 << 5), 64);
        // max encoding.
        assert_eq!(decode(ENC_MAX), VALUE_MAX);
    }

    #[test]
    fn decode_is_monotonic() {
        let mut prev = 0;
        for enc in 0..=ENC_MAX {
            let v = decode(enc);
            assert!(v >= prev, "decode must be non-decreasing at {enc}");
            prev = v;
        }
    }

    #[test]
    fn exact_values_roundtrip() {
        for enc in 0..=ENC_MAX {
            let v = decode(enc);
            assert_eq!(encode_floor(v), Some(enc), "floor roundtrip at {enc}");
            assert_eq!(encode_ceil(v), Some(enc), "ceil roundtrip at {enc}");
        }
    }

    #[test]
    fn floor_never_exceeds_value() {
        for value in [0u64, 1, 31, 32, 33, 63, 64, 65, 100, 1000, 123_456, 999_999_999] {
            let enc = encode_floor(value).unwrap();
            assert!(decode(enc) <= value, "floor({value}) overshot");
        }
    }

    #[test]
    fn ceil_never_undershoots_value() {
        for value in [0u64, 1, 31, 32, 33, 63, 64, 65, 100, 1000, 123_456, 999_999_999] {
            let enc = encode_ceil(value).unwrap();
            assert!(decode(enc) >= value, "ceil({value}) undershot");
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(encode_floor(VALUE_MAX + 1), None);
        assert_eq!(encode_ceil(VALUE_MAX + 1), None);
        assert_eq!(encode_floor(VALUE_MAX), Some(ENC_MAX));
    }

    #[test]
    fn relative_error_is_bounded() {
        // Spacing within an octave is 1/32 ⇒ floor error < 1/32 of value.
        for value in (32u64..100_000).step_by(977) {
            let enc = encode_floor(value).unwrap();
            let decoded = decode(enc);
            assert!(value - decoded <= value / 32, "error too large at {value}");
        }
    }
}
