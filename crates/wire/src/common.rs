//! SCION common header and address header.
//!
//! Layout follows the SCION header specification the paper's Appendix A
//! builds on. Host addresses are fixed at 4 bytes (`DT/DL = 0`) — SCION
//! supports longer host addresses, but nothing in Hummingbird depends on
//! them and the paper's evaluation uses IPv4 hosts.

use crate::error::{Result, WireError};

/// SCION path-type value for the standard SCION path.
pub const PATH_TYPE_SCION: u8 = 1;
/// Path-type value we assign to the Hummingbird path type (new in the paper).
pub const PATH_TYPE_HUMMINGBIRD: u8 = 5;

/// Common header length in bytes.
pub const COMMON_HDR_LEN: usize = 12;
/// Address header length in bytes (4-byte host addresses).
pub const ADDR_HDR_LEN: usize = 24;

/// An ISD-AS pair identifying an autonomous system in SCION.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IsdAs {
    /// Isolation-domain identifier.
    pub isd: u16,
    /// AS number (48-bit in SCION).
    pub asn: u64,
}

impl IsdAs {
    /// Builds an ISD-AS pair, masking the AS number to 48 bits.
    pub const fn new(isd: u16, asn: u64) -> Self {
        IsdAs { isd, asn: asn & 0xffff_ffff_ffff }
    }
}

impl std::fmt::Display for IsdAs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{:x}", self.isd, self.asn)
    }
}

/// Owned representation of the SCION common header.
///
/// ```text
///  0       Version(4) | QoS(4 high bits of TrafficClass)
///  1..4    FlowID (20 bits, low bits of bytes 1-3)
///  4       NextHdr
///  5       HdrLen (total header length in 4-byte units)
///  6..8    PayloadLen
///  8       PathType
///  9       DT/DL/ST/SL (host-address types; 0 here)
/// 10..12   RSV
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommonHeader {
    /// SCION version (0).
    pub version: u8,
    /// Traffic class / QoS byte.
    pub traffic_class: u8,
    /// 20-bit flow identifier.
    pub flow_id: u32,
    /// Next (L4) header identifier.
    pub next_hdr: u8,
    /// Total header length in 4-byte units (common + address + path).
    pub hdr_len: u8,
    /// Payload length in bytes.
    pub payload_len: u16,
    /// Path type (SCION = 1, Hummingbird = 5).
    pub path_type: u8,
}

impl CommonHeader {
    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < COMMON_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let version = buf[0] >> 4;
        let traffic_class = ((buf[0] & 0x0f) << 4) | (buf[1] >> 4);
        let flow_id =
            (u32::from(buf[1] & 0x0f) << 16) | (u32::from(buf[2]) << 8) | u32::from(buf[3]);
        Ok(CommonHeader {
            version,
            traffic_class,
            flow_id,
            next_hdr: buf[4],
            hdr_len: buf[5],
            payload_len: u16::from_be_bytes([buf[6], buf[7]]),
            path_type: buf[8],
        })
    }

    /// Emits into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < COMMON_HDR_LEN {
            return Err(WireError::Truncated);
        }
        if self.flow_id >= (1 << 20) {
            return Err(WireError::FieldRange);
        }
        buf[0] = (self.version << 4) | (self.traffic_class >> 4);
        buf[1] = ((self.traffic_class & 0x0f) << 4) | ((self.flow_id >> 16) as u8 & 0x0f);
        buf[2] = (self.flow_id >> 8) as u8;
        buf[3] = self.flow_id as u8;
        buf[4] = self.next_hdr;
        buf[5] = self.hdr_len;
        buf[6..8].copy_from_slice(&self.payload_len.to_be_bytes());
        buf[8] = self.path_type;
        buf[9] = 0; // DT/DL/ST/SL: 4-byte host addresses
        buf[10] = 0;
        buf[11] = 0;
        Ok(())
    }

    /// Computes the authenticated packet length (Eq. 7d):
    /// `PktLen = PayloadLen + 4·HdrLen`, dropping the packet on overflow.
    pub fn pkt_len(&self) -> Result<u16> {
        self.payload_len.checked_add(4 * u16::from(self.hdr_len)).ok_or(WireError::PktLenOverflow)
    }
}

/// Owned representation of the SCION address header (4-byte host addrs).
///
/// ```text
///  0..2   DstISD    2..8  DstAS
///  8..10  SrcISD   10..16 SrcAS
/// 16..20  DstHostAddr
/// 20..24  SrcHostAddr
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AddressHeader {
    /// Destination AS.
    pub dst: IsdAs,
    /// Source AS.
    pub src: IsdAs,
    /// Destination host address (IPv4-sized).
    pub dst_host: [u8; 4],
    /// Source host address (IPv4-sized).
    pub src_host: [u8; 4],
}

impl AddressHeader {
    /// Parses from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self> {
        if buf.len() < ADDR_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let read_ia = |b: &[u8]| IsdAs {
            isd: u16::from_be_bytes([b[0], b[1]]),
            asn: (u64::from(b[2]) << 40)
                | (u64::from(b[3]) << 32)
                | (u64::from(b[4]) << 24)
                | (u64::from(b[5]) << 16)
                | (u64::from(b[6]) << 8)
                | u64::from(b[7]),
        };
        let mut dst_host = [0u8; 4];
        dst_host.copy_from_slice(&buf[16..20]);
        let mut src_host = [0u8; 4];
        src_host.copy_from_slice(&buf[20..24]);
        Ok(AddressHeader {
            dst: read_ia(&buf[0..8]),
            src: read_ia(&buf[8..16]),
            dst_host,
            src_host,
        })
    }

    /// Emits into the front of `buf`.
    pub fn emit(&self, buf: &mut [u8]) -> Result<()> {
        if buf.len() < ADDR_HDR_LEN {
            return Err(WireError::Truncated);
        }
        let write_ia = |ia: &IsdAs, b: &mut [u8]| {
            b[0..2].copy_from_slice(&ia.isd.to_be_bytes());
            let a = ia.asn & 0xffff_ffff_ffff;
            b[2] = (a >> 40) as u8;
            b[3] = (a >> 32) as u8;
            b[4] = (a >> 24) as u8;
            b[5] = (a >> 16) as u8;
            b[6] = (a >> 8) as u8;
            b[7] = a as u8;
        };
        write_ia(&self.dst, &mut buf[0..8]);
        write_ia(&self.src, &mut buf[8..16]);
        buf[16..20].copy_from_slice(&self.dst_host);
        buf[20..24].copy_from_slice(&self.src_host);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_header_roundtrip() {
        let hdr = CommonHeader {
            version: 0,
            traffic_class: 0xb8,
            flow_id: 0xabcde,
            next_hdr: 17,
            hdr_len: 27,
            payload_len: 1400,
            path_type: PATH_TYPE_HUMMINGBIRD,
        };
        let mut buf = [0u8; COMMON_HDR_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(CommonHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn flow_id_range_enforced() {
        let hdr = CommonHeader {
            version: 0,
            traffic_class: 0,
            flow_id: 1 << 20,
            next_hdr: 0,
            hdr_len: 0,
            payload_len: 0,
            path_type: 0,
        };
        let mut buf = [0u8; COMMON_HDR_LEN];
        assert_eq!(hdr.emit(&mut buf), Err(WireError::FieldRange));
    }

    #[test]
    fn pkt_len_eq_7d() {
        let hdr = CommonHeader {
            version: 0,
            traffic_class: 0,
            flow_id: 0,
            next_hdr: 0,
            hdr_len: 50,
            payload_len: 1000,
            path_type: 0,
        };
        assert_eq!(hdr.pkt_len().unwrap(), 1200);
    }

    #[test]
    fn pkt_len_overflow_is_error() {
        let hdr = CommonHeader {
            version: 0,
            traffic_class: 0,
            flow_id: 0,
            next_hdr: 0,
            hdr_len: 255,
            payload_len: u16::MAX - 100,
            path_type: 0,
        };
        assert_eq!(hdr.pkt_len(), Err(WireError::PktLenOverflow));
    }

    #[test]
    fn address_header_roundtrip() {
        let hdr = AddressHeader {
            dst: IsdAs::new(1, 0xff00_0000_0110),
            src: IsdAs::new(2, 0xff00_0000_0220),
            dst_host: [10, 0, 0, 1],
            src_host: [192, 168, 1, 7],
        };
        let mut buf = [0u8; ADDR_HDR_LEN];
        hdr.emit(&mut buf).unwrap();
        assert_eq!(AddressHeader::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn asn_is_masked_to_48_bits() {
        let ia = IsdAs::new(1, u64::MAX);
        assert_eq!(ia.asn, 0xffff_ffff_ffff);
    }

    #[test]
    fn truncated_buffers_rejected() {
        assert_eq!(CommonHeader::parse(&[0u8; 11]), Err(WireError::Truncated));
        assert_eq!(AddressHeader::parse(&[0u8; 23]), Err(WireError::Truncated));
    }
}
