//! Offline optimal interval coloring (sweep line), used as the baseline for
//! competitiveness measurements of the online allocators.

use crate::interval::Interval;
use std::collections::BinaryHeap;

/// Colors `intervals` offline with the minimum number of colors (equal to
/// the maximum overlap). Returns one color per input interval, in input
/// order, plus the number of colors used.
pub fn color_optimal(intervals: &[Interval]) -> (Vec<u32>, u32) {
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| (intervals[i].start, intervals[i].end));

    let mut colors = vec![0u32; intervals.len()];
    // Free colors (min-heap via Reverse) and in-use colors keyed by end.
    let mut free: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
    let mut in_use: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut next_color = 0u32;

    for &idx in &order {
        let iv = &intervals[idx];
        // Reclaim colors whose interval ended at or before this start.
        while let Some(&std::cmp::Reverse((end, color))) = in_use.peek() {
            if end <= iv.start {
                in_use.pop();
                free.push(std::cmp::Reverse(color));
            } else {
                break;
            }
        }
        let color = match free.pop() {
            Some(std::cmp::Reverse(c)) => c,
            None => {
                let c = next_color;
                next_color += 1;
                c
            }
        };
        colors[idx] = color;
        in_use.push(std::cmp::Reverse((iv.end, color)));
    }
    (colors, next_color)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::max_overlap;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn is_valid(intervals: &[Interval], colors: &[u32]) -> bool {
        for i in 0..intervals.len() {
            for j in i + 1..intervals.len() {
                if colors[i] == colors[j] && intervals[i].overlaps(&intervals[j]) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn uses_exactly_max_overlap_colors() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..25 {
            let intervals: Vec<Interval> = (0..80)
                .map(|_| {
                    let s = rng.gen_range(0u64..1000);
                    Interval::new(s, s + rng.gen_range(1u64..150))
                })
                .collect();
            let (colors, used) = color_optimal(&intervals);
            assert!(is_valid(&intervals, &colors));
            assert_eq!(used as usize, max_overlap(&intervals), "optimality");
        }
    }

    #[test]
    fn empty_input() {
        let (colors, used) = color_optimal(&[]);
        assert!(colors.is_empty());
        assert_eq!(used, 0);
    }

    #[test]
    fn touching_intervals_reuse_colors() {
        let ivs = vec![Interval::new(0, 10), Interval::new(10, 20)];
        let (colors, used) = color_optimal(&ivs);
        assert_eq!(used, 1);
        assert_eq!(colors, vec![0, 0]);
    }
}
