//! # hummingbird-coloring
//!
//! ResID assignment as online interval coloring (paper §4.4).
//!
//! An AS must hand every reservation a ResID that is unique for its
//! interface pair during its validity period, while keeping the largest
//! assigned ID small enough that the policing array stays cache-resident.
//! This is the online interval coloring problem. We provide:
//!
//! * [`FirstFit`] — the algorithm the paper's client application uses
//!   (§6.1); near-optimal on practical workloads;
//! * [`ShardedFirstFit`] — a steering-aware variant that partitions the
//!   color space into the dataplane's per-shard ResID ranges, always
//!   allocating from the least-loaded shard, with O(log)/O(1) fast paths
//!   for million-reservation ingresses;
//! * [`KiersteadTrotter`] — the optimal 3-competitive online algorithm the
//!   paper cites for its worst-case `ResIDmax = 3 · TotalBW/MinBW` bound;
//! * [`color_optimal`] — the offline optimum (sweep line) as a baseline;
//! * [`res_id_bound`] — the paper's worst-case array-size bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod first_fit;
mod interval;
mod kt;
mod offline;
mod sharded;

pub use first_fit::FirstFit;
pub use interval::{max_overlap, Interval};
pub use kt::KiersteadTrotter;
pub use offline::color_optimal;
pub use sharded::ShardedFirstFit;

/// Competitiveness of the optimal online interval coloring algorithm
/// (Kierstead-Trotter): `R = 3`.
pub const R_OPTIMAL_ONLINE: u64 = 3;

/// The paper's worst-case bound on the highest ResID (§4.4):
/// `ResIDmax = R · TotalBW / MinBW`.
///
/// Both bandwidths must use the same unit. Returns `None` when
/// `min_bw == 0`.
pub fn res_id_bound(total_bw: u64, min_bw: u64, r: u64) -> Option<u64> {
    if min_bw == 0 {
        return None;
    }
    Some(r * (total_bw / min_bw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_voip() {
        // 100 Gbps link, 100 kbps minimum ⇒ ResIDmax = 3e6 (§4.4 ex. 1).
        let bound = res_id_bound(100_000_000, 100, R_OPTIMAL_ONLINE).unwrap();
        assert_eq!(bound, 3_000_000);
        // 8-byte counters ⇒ 24 MB policing array.
        assert_eq!(bound * 8, 24_000_000);
    }

    #[test]
    fn paper_example_2_video() {
        // 100 Gbps link, 4 Mbps minimum ⇒ ResIDmax = 75 000 (§4.4 ex. 2).
        let bound = res_id_bound(100_000_000, 4_000, R_OPTIMAL_ONLINE).unwrap();
        assert_eq!(bound, 75_000);
        // 600 kB policing array.
        assert_eq!(bound * 8, 600_000);
    }

    #[test]
    fn zero_min_bw_rejected() {
        assert_eq!(res_id_bound(100, 0, 3), None);
    }
}
