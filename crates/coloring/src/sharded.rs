//! Steering-aware ResID allocation across dataplane shards.
//!
//! The sharded runtime steers packets to workers by contiguous ResID
//! range (`ShardMap` in `hummingbird-dataplane`), so *where* the control
//! plane draws a ResID from decides which shard carries the flow. A
//! [`ShardedFirstFit`] partitions the color space into those per-shard
//! ranges and always allocates from the currently least-loaded shard,
//! balancing shard load at admission time instead of hoping the ID
//! distribution comes out even.
//!
//! Within a shard the allocator keeps First-Fit's structure (per-color
//! sorted active intervals) but adds two O(log n)/O(1) fast paths so a
//! million-reservation ingress does not degenerate into First-Fit's
//! O(colors) scan per assignment:
//!
//! 1. a `BTreeSet` of *empty* colors — a recycled ResID is found in
//!    O(log colors);
//! 2. a fresh-color bump pointer — an unused ResID is found in O(1).
//!
//! Only when every color in the shard is partially occupied (some active
//! interval, but maybe compatible gaps) does it fall back to the linear
//! first-fit scan. The trade-off versus pure First-Fit: a *partially*
//! occupied low color with a compatible gap may be skipped in favor of an
//! empty or fresh color, so IDs can run slightly higher; the coloring
//! invariant (no two active intervals share a ResID) is identical, and
//! [`FirstFit`](crate::FirstFit) keeps the paper-exact behavior for
//! callers that want it.

use crate::interval::Interval;
use std::collections::BTreeSet;
use std::ops::Range;

/// One shard's slice of the ResID space.
#[derive(Clone, Debug)]
struct ShardSlice {
    /// First ResID of the shard's range.
    base: u32,
    /// Number of ResIDs in the range.
    cap: u32,
    /// Active intervals per local color, each sorted by start.
    colors: Vec<Vec<Interval>>,
    /// Local colors in `colors` that currently hold no interval.
    empty: BTreeSet<u32>,
    /// Number of active reservations in this shard.
    active: usize,
    /// Highest local color ever handed out.
    high_water: Option<u32>,
}

impl ShardSlice {
    fn new(range: &Range<u32>) -> Self {
        ShardSlice {
            base: range.start,
            cap: range.end.saturating_sub(range.start),
            colors: Vec::new(),
            empty: BTreeSet::new(),
            active: 0,
            high_water: None,
        }
    }

    fn contains(&self, res_id: u32) -> bool {
        res_id >= self.base && res_id < self.base + self.cap
    }

    /// Assigns a local color for `iv`, or `None` if the shard is full for
    /// this interval.
    fn assign(&mut self, iv: Interval) -> Option<u32> {
        // Fast path 1: reuse the smallest fully-free color.
        if let Some(&c) = self.empty.iter().next() {
            self.empty.remove(&c);
            self.colors[c as usize].push(iv);
            self.bump(c);
            return Some(c);
        }
        // Fast path 2: open a fresh color.
        if (self.colors.len() as u32) < self.cap {
            self.colors.push(vec![iv]);
            let c = (self.colors.len() - 1) as u32;
            self.bump(c);
            return Some(c);
        }
        // Fallback: classic first-fit scan over partially occupied colors.
        for (c, actives) in self.colors.iter_mut().enumerate() {
            if !actives.iter().any(|a| a.overlaps(&iv)) {
                let pos = actives.partition_point(|a| a.start < iv.start);
                actives.insert(pos, iv);
                let c = c as u32;
                self.bump(c);
                return Some(c);
            }
        }
        None
    }

    fn bump(&mut self, color: u32) {
        self.active += 1;
        self.high_water = Some(self.high_water.map_or(color, |hw| hw.max(color)));
    }

    fn release(&mut self, local: u32, iv: &Interval) -> bool {
        let Some(actives) = self.colors.get_mut(local as usize) else {
            return false;
        };
        let Some(pos) = actives.iter().position(|a| a == iv) else {
            return false;
        };
        actives.remove(pos);
        self.active -= 1;
        if actives.is_empty() {
            self.empty.insert(local);
        }
        true
    }

    fn try_extend(&mut self, local: u32, iv: &Interval, new_end: u64) -> bool {
        if new_end <= iv.end {
            return false;
        }
        let Some(actives) = self.colors.get_mut(local as usize) else {
            return false;
        };
        let Some(pos) = actives.iter().position(|a| a == iv) else {
            return false;
        };
        if let Some(next) = actives.get(pos + 1) {
            if next.start < new_end {
                return false;
            }
        }
        actives[pos].end = new_end;
        true
    }

    fn release_expired(&mut self, now: u64) {
        for (c, actives) in self.colors.iter_mut().enumerate() {
            let before = actives.len();
            actives.retain(|a| !a.expired_at(now));
            self.active -= before - actives.len();
            if actives.is_empty() && before > 0 {
                self.empty.insert(c as u32);
            }
        }
    }
}

/// A steering-aware First-Fit variant: the ResID space is split into the
/// dataplane's per-shard ranges, new reservations are colored from the
/// least-loaded shard, and renewals extend their interval in place.
///
/// Construct it from `ShardMap::res_id_ranges()` (or any disjoint set of
/// ranges); a single range reproduces one-allocator behavior.
#[derive(Clone, Debug)]
pub struct ShardedFirstFit {
    shards: Vec<ShardSlice>,
}

impl ShardedFirstFit {
    /// Creates an allocator over the given per-shard ResID ranges. The
    /// ranges must be disjoint; empty ranges are allowed and never used.
    pub fn new(ranges: &[Range<u32>]) -> Self {
        ShardedFirstFit { shards: ranges.iter().map(ShardSlice::new).collect() }
    }

    /// Single-shard convenience: colors drawn from `[0, max_ids)`.
    pub fn single(max_ids: u32) -> Self {
        Self::new(&[Range { start: 0, end: max_ids }])
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard whose range contains `res_id`, if any.
    pub fn shard_of(&self, res_id: u32) -> Option<usize> {
        self.shards.iter().position(|s| s.contains(res_id))
    }

    /// Assigns a ResID for `iv` from the least-loaded shard (ties break
    /// toward the lowest shard index). Falls over to the next-least-loaded
    /// shard when a shard is full for this interval; returns `None` only
    /// when every shard is.
    pub fn assign(&mut self, iv: Interval) -> Option<u32> {
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by_key(|&i| (self.shards[i].active, i));
        for i in order {
            let shard = &mut self.shards[i];
            if let Some(local) = shard.assign(iv) {
                return Some(shard.base + local);
            }
        }
        None
    }

    /// Extends the active reservation `(res_id, iv)` to `new_end` without
    /// changing its color — the renewal fast path. See
    /// [`FirstFit::try_extend`](crate::FirstFit::try_extend).
    pub fn try_extend(&mut self, res_id: u32, iv: &Interval, new_end: u64) -> bool {
        match self.shard_of(res_id) {
            Some(i) => {
                let shard = &mut self.shards[i];
                shard.try_extend(res_id - shard.base, iv, new_end)
            }
            None => false,
        }
    }

    /// Removes a specific reservation, returning whether it was present.
    pub fn release(&mut self, res_id: u32, iv: &Interval) -> bool {
        match self.shard_of(res_id) {
            Some(i) => {
                let shard = &mut self.shards[i];
                shard.release(res_id - shard.base, iv)
            }
            None => false,
        }
    }

    /// Prunes every interval that has ended by `now`.
    pub fn release_expired(&mut self, now: u64) {
        for shard in &mut self.shards {
            shard.release_expired(now);
        }
    }

    /// Number of currently active reservations.
    pub fn active_count(&self) -> usize {
        self.shards.iter().map(|s| s.active).sum()
    }

    /// Active reservations per shard, in shard order.
    pub fn active_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.active).collect()
    }

    /// Highest ResID handed out so far, if any (drives the policing-array
    /// size, like [`FirstFit::high_water`](crate::FirstFit::high_water)).
    pub fn high_water(&self) -> Option<u32> {
        self.shards.iter().filter_map(|s| s.high_water.map(|hw| s.base + hw)).max()
    }

    /// Total ResID capacity across all shards.
    pub fn max_ids(&self) -> u32 {
        self.shards.iter().map(|s| s.cap).sum()
    }

    /// Max/min ratio of per-shard active counts over the non-empty-range
    /// shards — the load-balance figure the scale bench checks against
    /// its ≤ 1.1 budget. 1.0 when balanced; ∞ when some shard is empty
    /// while another is not.
    pub fn skew(&self) -> f64 {
        let counts: Vec<usize> =
            self.shards.iter().filter(|s| s.cap > 0).map(|s| s.active).collect();
        let (min, max) = match (counts.iter().min(), counts.iter().max()) {
            (Some(&min), Some(&max)) => (min, max),
            _ => return 1.0,
        };
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// Checks the coloring invariant (no two active intervals share a
    /// ResID) plus the internal bookkeeping (empty-set and active counts).
    pub fn is_valid(&self) -> bool {
        self.shards.iter().all(|s| {
            let non_overlapping = s.colors.iter().all(|actives| {
                actives
                    .iter()
                    .enumerate()
                    .all(|(i, a)| actives[i + 1..].iter().all(|b| !a.overlaps(b)))
            });
            let empties_are_empty =
                s.empty.iter().all(|&c| s.colors.get(c as usize).is_some_and(|v| v.is_empty()));
            let active_matches = s.active == s.colors.iter().map(|c| c.len()).sum::<usize>();
            non_overlapping && empties_are_empty && active_matches
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_ranges(shards: u32, slots: u32) -> Vec<Range<u32>> {
        (0..shards).map(|s| (s * slots / shards)..((s + 1) * slots / shards)).collect()
    }

    #[test]
    fn single_shard_behaves_like_first_fit_on_fast_paths() {
        let mut sf = ShardedFirstFit::single(10);
        assert_eq!(sf.assign(Interval::new(0, 10)), Some(0));
        assert_eq!(sf.assign(Interval::new(5, 15)), Some(1));
        assert_eq!(sf.assign(Interval::new(9, 12)), Some(2));
        assert!(sf.is_valid());
        assert_eq!(sf.high_water(), Some(2));
    }

    #[test]
    fn expired_ids_recycle_through_the_empty_set() {
        let mut sf = ShardedFirstFit::single(4);
        let iv = Interval::new(0, 10);
        assert_eq!(sf.assign(iv), Some(0));
        assert_eq!(sf.assign(Interval::new(0, 10)), Some(1));
        sf.release_expired(10);
        // Smallest recycled color wins over a fresh one.
        assert_eq!(sf.assign(Interval::new(20, 30)), Some(0));
        assert!(sf.is_valid());
    }

    #[test]
    fn assignments_balance_across_shards() {
        let ranges = even_ranges(4, 100);
        let mut sf = ShardedFirstFit::new(&ranges);
        for i in 0..40 {
            let id = sf.assign(Interval::new(0, 100 + i)).unwrap();
            let shard = sf.shard_of(id).unwrap();
            assert!(ranges[shard].contains(&id), "ResID in its shard's range");
        }
        assert_eq!(sf.active_per_shard(), vec![10, 10, 10, 10]);
        assert!((sf.skew() - 1.0).abs() < 1e-9);
        assert!(sf.is_valid());
    }

    #[test]
    fn full_shard_falls_over_to_next_least_loaded() {
        // Shard 0 has 2 slots, shard 1 has 8.
        let mut sf = ShardedFirstFit::new(&[0..2, 2..10]);
        let mut ids = Vec::new();
        for _ in 0..6 {
            ids.push(sf.assign(Interval::new(0, 10)).unwrap());
        }
        // 2 land in shard 0 (its capacity), the rest in shard 1.
        assert_eq!(ids.iter().filter(|&&id| id < 2).count(), 2);
        assert_eq!(sf.active_per_shard(), vec![2, 4]);
    }

    #[test]
    fn exhausted_space_returns_none() {
        let mut sf = ShardedFirstFit::new(&[0..1, 1..2]);
        assert!(sf.assign(Interval::new(0, 10)).is_some());
        assert!(sf.assign(Interval::new(0, 10)).is_some());
        assert_eq!(sf.assign(Interval::new(5, 8)), None);
        // A disjoint interval still fits via the first-fit fallback.
        assert!(sf.assign(Interval::new(10, 20)).is_some());
    }

    #[test]
    fn extend_keeps_color_and_respects_successor() {
        let mut sf = ShardedFirstFit::single(4);
        let iv = Interval::new(0, 10);
        let id = sf.assign(iv).unwrap();
        // Same color has a later interval starting at 20.
        let blocker = Interval::new(20, 30);
        assert!(sf.release_then_place_at(id, blocker));
        assert!(sf.try_extend(id, &iv, 20), "extend up to the successor");
        assert!(!sf.try_extend(id, &Interval::new(0, 20), 25), "into the successor fails");
        assert!(!sf.try_extend(99, &iv, 30), "unknown ResID fails");
        assert!(sf.is_valid());
    }

    #[test]
    fn release_returns_presence() {
        let mut sf = ShardedFirstFit::new(&even_ranges(2, 10));
        let iv = Interval::new(0, 5);
        let id = sf.assign(iv).unwrap();
        assert!(sf.release(id, &iv));
        assert!(!sf.release(id, &iv));
        assert_eq!(sf.active_count(), 0);
        assert!((sf.skew() - 1.0).abs() < 1e-9);
    }

    impl ShardedFirstFit {
        /// Test helper: force-place `iv` on `res_id`'s color.
        fn release_then_place_at(&mut self, res_id: u32, iv: Interval) -> bool {
            let Some(i) = self.shard_of(res_id) else { return false };
            let shard = &mut self.shards[i];
            let local = (res_id - shard.base) as usize;
            if shard.colors[local].iter().any(|a| a.overlaps(&iv)) {
                return false;
            }
            let pos = shard.colors[local].partition_point(|a| a.start < iv.start);
            shard.colors[local].insert(pos, iv);
            shard.active += 1;
            true
        }
    }
}
