//! First-Fit online interval coloring.
//!
//! The paper's market client assigns ResIDs "using an online First Fit
//! algorithm [21, 28]" (§6.1). First-Fit has a performance ratio of at
//! least 5 on adversarial interval sequences [Kierstead-Smith-Trotter 2016]
//! but performs close to optimal on most practical workloads [Gyárfás-Lehel
//! 1988], which is why real deployments prefer it.

use crate::interval::Interval;

/// A First-Fit ResID allocator for one ingress interface.
///
/// Maintains, per color (ResID), the set of currently active reservations;
/// a new reservation gets the smallest ResID whose active intervals it does
/// not overlap. Expired intervals are pruned lazily so IDs recycle across
/// validity periods, exactly as §4.1 requires ("unique for the interface
/// pair during the reservation's validity period").
#[derive(Clone, Debug)]
pub struct FirstFit {
    /// Active intervals per color, each kept sorted by start.
    colors: Vec<Vec<Interval>>,
    /// Hard cap on the number of distinct ResIDs (ResIDmax + 1).
    max_ids: u32,
    /// Highest color ever handed out (for competitiveness accounting).
    high_water: u32,
}

impl FirstFit {
    /// Creates an allocator with at most `max_ids` distinct ResIDs.
    ///
    /// The paper bounds `ResIDmax = R · TotalBW / MinBW` (§4.4); callers
    /// compute that bound and pass it here.
    pub fn new(max_ids: u32) -> Self {
        FirstFit { colors: Vec::new(), max_ids, high_water: 0 }
    }

    /// Assigns the smallest available ResID for `iv`, or `None` if all
    /// `max_ids` colors conflict.
    pub fn assign(&mut self, iv: Interval) -> Option<u32> {
        for (color, actives) in self.colors.iter_mut().enumerate() {
            if !actives.iter().any(|a| a.overlaps(&iv)) {
                let pos = actives.partition_point(|a| a.start < iv.start);
                actives.insert(pos, iv);
                self.high_water = self.high_water.max(color as u32);
                return Some(color as u32);
            }
        }
        if (self.colors.len() as u32) < self.max_ids {
            self.colors.push(vec![iv]);
            let color = (self.colors.len() - 1) as u32;
            self.high_water = self.high_water.max(color);
            Some(color)
        } else {
            None
        }
    }

    /// Extends an active reservation's interval in place to `new_end`
    /// without changing its color — the renewal fast path. Succeeds iff
    /// the reservation `(res_id, iv)` is active, `new_end > iv.end`, and
    /// the extension does not run into the next interval on the same
    /// color. Only the successor interval needs checking because the
    /// per-color vectors are non-overlapping and sorted by start.
    pub fn try_extend(&mut self, res_id: u32, iv: &Interval, new_end: u64) -> bool {
        if new_end <= iv.end {
            return false;
        }
        let Some(actives) = self.colors.get_mut(res_id as usize) else {
            return false;
        };
        let Some(pos) = actives.iter().position(|a| a == iv) else {
            return false;
        };
        if let Some(next) = actives.get(pos + 1) {
            if next.start < new_end {
                return false;
            }
        }
        actives[pos].end = new_end;
        true
    }

    /// Removes a specific reservation (e.g. cancelled), returning whether
    /// it was present.
    pub fn release(&mut self, res_id: u32, iv: &Interval) -> bool {
        match self.colors.get_mut(res_id as usize) {
            Some(actives) => match actives.iter().position(|a| a == iv) {
                Some(pos) => {
                    actives.remove(pos);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Prunes every interval that has ended by `now`.
    pub fn release_expired(&mut self, now: u64) {
        for actives in self.colors.iter_mut() {
            actives.retain(|a| !a.expired_at(now));
        }
    }

    /// Number of currently active reservations.
    pub fn active_count(&self) -> usize {
        self.colors.iter().map(|c| c.len()).sum()
    }

    /// Highest ResID handed out so far (drives the policing-array size).
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// The configured ResID cap.
    pub fn max_ids(&self) -> u32 {
        self.max_ids
    }

    /// Checks the coloring invariant: no two active intervals under the
    /// same ResID overlap. Used by tests and debug assertions.
    pub fn is_valid(&self) -> bool {
        self.colors.iter().all(|actives| {
            actives.iter().enumerate().all(|(i, a)| actives[i + 1..].iter().all(|b| !a.overlaps(b)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_intervals_share_color_zero() {
        let mut ff = FirstFit::new(10);
        assert_eq!(ff.assign(Interval::new(0, 10)), Some(0));
        assert_eq!(ff.assign(Interval::new(10, 20)), Some(0));
        assert_eq!(ff.assign(Interval::new(20, 30)), Some(0));
        assert!(ff.is_valid());
    }

    #[test]
    fn overlapping_intervals_get_distinct_ids() {
        let mut ff = FirstFit::new(10);
        assert_eq!(ff.assign(Interval::new(0, 10)), Some(0));
        assert_eq!(ff.assign(Interval::new(5, 15)), Some(1));
        assert_eq!(ff.assign(Interval::new(9, 12)), Some(2));
        // After the first two end, color 0 is free again.
        assert_eq!(ff.assign(Interval::new(15, 20)), Some(0));
        assert!(ff.is_valid());
    }

    #[test]
    fn cap_is_enforced() {
        let mut ff = FirstFit::new(2);
        assert!(ff.assign(Interval::new(0, 10)).is_some());
        assert!(ff.assign(Interval::new(0, 10)).is_some());
        assert_eq!(ff.assign(Interval::new(0, 10)), None);
    }

    #[test]
    fn expiry_recycles_ids() {
        let mut ff = FirstFit::new(1);
        assert_eq!(ff.assign(Interval::new(0, 10)), Some(0));
        assert_eq!(ff.assign(Interval::new(5, 15)), None);
        ff.release_expired(10);
        assert_eq!(ff.assign(Interval::new(10, 20)), Some(0));
        assert_eq!(ff.active_count(), 1);
    }

    #[test]
    fn release_specific_reservation() {
        let mut ff = FirstFit::new(5);
        let iv = Interval::new(0, 100);
        assert_eq!(ff.assign(iv), Some(0));
        assert!(ff.release(0, &iv));
        assert!(!ff.release(0, &iv));
        assert_eq!(ff.assign(Interval::new(50, 60)), Some(0));
    }

    #[test]
    fn extend_in_place_respects_successor() {
        let mut ff = FirstFit::new(4);
        let iv = Interval::new(0, 10);
        assert_eq!(ff.assign(iv), Some(0));
        // Color 0 also holds [20, 30): the extension may reach 20, not past.
        assert_eq!(ff.assign(Interval::new(20, 30)), Some(0));
        assert!(!ff.try_extend(0, &iv, 10), "new_end must grow the interval");
        assert!(!ff.try_extend(0, &iv, 25), "cannot run into the successor");
        assert!(ff.try_extend(0, &iv, 20));
        assert!(ff.is_valid());
        // The stored interval changed, so the old handle no longer matches.
        assert!(!ff.try_extend(0, &iv, 30));
        assert!(!ff.try_extend(1, &Interval::new(0, 20), 30), "unknown color fails");
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut ff = FirstFit::new(10);
        for i in 0..5 {
            ff.assign(Interval::new(i, 100)).unwrap();
        }
        assert_eq!(ff.high_water(), 4);
        ff.release_expired(100);
        ff.assign(Interval::new(200, 201)).unwrap();
        assert_eq!(ff.high_water(), 4, "high water never decreases");
    }
}
