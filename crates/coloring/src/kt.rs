//! Kierstead-Trotter online interval coloring (3-competitive).
//!
//! The paper (§4.4) bounds the policing array by `ResIDmax = R ·
//! TotalBW/MinBW` where `R` is the competitiveness of the coloring
//! algorithm, citing the optimal online algorithm with `R = 3`
//! [Kierstead-Trotter 1981]. This module implements that algorithm:
//!
//! 1. Each arriving interval `v` is assigned the smallest *level* `m ≥ 1`
//!    such that `v` together with the already-present intervals of level
//!    `≤ m` that intersect it has clique number `≤ m`.
//! 2. Kierstead and Trotter prove the intervals within one level form a
//!    graph with clique number ≤ 2 (a union of paths), which First-Fit
//!    colors online with at most 3 colors; level 1 is an independent set
//!    needing 1 color.
//!
//! Colors are mapped to ResIDs as `level 1 → 0` and
//! `level m ≥ 2 → 1 + 3·(m-2) + sub` with `sub ∈ {0,1,2}`, giving at most
//! `3ω - 2` ResIDs for maximum overlap `ω`.

use crate::interval::{max_overlap, Interval};

#[derive(Clone, Debug)]
struct Entry {
    iv: Interval,
    level: usize,
    sub: usize,
}

/// The Kierstead-Trotter allocator.
#[derive(Clone, Debug, Default)]
pub struct KiersteadTrotter {
    entries: Vec<Entry>,
    high_water: u32,
}

impl KiersteadTrotter {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    fn level_of(&self, iv: &Interval) -> usize {
        let mut m = 1;
        loop {
            // Clique number of {u : level(u) <= m, u ∩ iv} ∪ {iv}.
            let mut others: Vec<Interval> = self
                .entries
                .iter()
                .filter(|e| e.level <= m && e.iv.overlaps(iv))
                .map(|e| e.iv)
                .collect();
            others.push(*iv);
            if max_overlap(&others) <= m {
                return m;
            }
            m += 1;
        }
    }

    /// Assigns a ResID to `iv`.
    pub fn assign(&mut self, iv: Interval) -> u32 {
        let level = self.level_of(&iv);
        // First-Fit within the level.
        let mut sub = 0usize;
        loop {
            let conflict =
                self.entries.iter().any(|e| e.level == level && e.sub == sub && e.iv.overlaps(&iv));
            if !conflict {
                break;
            }
            sub += 1;
        }
        self.entries.push(Entry { iv, level, sub });
        let color = Self::color_index(level, sub);
        self.high_water = self.high_water.max(color);
        color
    }

    /// Maps `(level, sub)` to a global ResID.
    fn color_index(level: usize, sub: usize) -> u32 {
        if level == 1 {
            debug_assert_eq!(sub, 0, "level-1 intervals are independent");
            0
        } else {
            (1 + 3 * (level - 2) + sub) as u32
        }
    }

    /// Prunes intervals ended by `now`.
    pub fn release_expired(&mut self, now: u64) {
        self.entries.retain(|e| !e.iv.expired_at(now));
    }

    /// Number of active intervals.
    pub fn active_count(&self) -> usize {
        self.entries.len()
    }

    /// Highest ResID handed out.
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Validates that no two overlapping intervals share a color.
    pub fn is_valid(&self) -> bool {
        for (i, a) in self.entries.iter().enumerate() {
            for b in &self.entries[i + 1..] {
                if a.level == b.level && a.sub == b.sub && a.iv.overlaps(&b.iv) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn independent_intervals_all_get_zero() {
        let mut kt = KiersteadTrotter::new();
        for i in 0..10 {
            assert_eq!(kt.assign(Interval::new(i * 10, i * 10 + 5)), 0);
        }
        assert!(kt.is_valid());
    }

    #[test]
    fn nested_overlaps_use_higher_levels() {
        let mut kt = KiersteadTrotter::new();
        let c1 = kt.assign(Interval::new(0, 100));
        let c2 = kt.assign(Interval::new(10, 90));
        let c3 = kt.assign(Interval::new(20, 80));
        assert_eq!(c1, 0);
        assert_ne!(c2, c1);
        assert_ne!(c3, c2);
        assert_ne!(c3, c1);
        assert!(kt.is_valid());
    }

    #[test]
    fn coloring_is_always_valid_on_random_sequences() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let mut kt = KiersteadTrotter::new();
            let mut intervals = Vec::new();
            for _ in 0..60 {
                let start = rng.gen_range(0u64..1000);
                let len = rng.gen_range(1u64..200);
                let iv = Interval::new(start, start + len);
                intervals.push(iv);
                kt.assign(iv);
            }
            assert!(kt.is_valid());
        }
    }

    #[test]
    fn competitive_ratio_within_three() {
        // On random instances the KT bound (3ω - 2) must hold.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let mut kt = KiersteadTrotter::new();
            let mut intervals = Vec::new();
            for _ in 0..100 {
                let start = rng.gen_range(0u64..500);
                let len = rng.gen_range(1u64..100);
                let iv = Interval::new(start, start + len);
                intervals.push(iv);
                kt.assign(iv);
            }
            let omega = max_overlap(&intervals) as u32;
            let used = kt.high_water() + 1;
            assert!(
                used <= 3 * omega.saturating_sub(1).max(1),
                "KT used {used} colors for omega {omega}"
            );
        }
    }

    #[test]
    fn expiry_prunes_entries() {
        let mut kt = KiersteadTrotter::new();
        kt.assign(Interval::new(0, 10));
        kt.assign(Interval::new(5, 20));
        kt.release_expired(15);
        assert_eq!(kt.active_count(), 1);
    }
}
