//! Time intervals for reservation validity periods.

/// A half-open time interval `[start, end)` in seconds.
///
/// Two reservations may share a ResID iff their validity intervals do not
/// overlap (§4.4: a ResID must be unique for an interface pair *during the
/// reservation's validity period*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Inclusive start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
}

impl Interval {
    /// Creates an interval; panics if `end <= start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end > start, "interval must be non-empty: [{start}, {end})");
        Interval { start, end }
    }

    /// Whether two intervals overlap.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the interval has ended at time `now`.
    pub fn expired_at(&self, now: u64) -> bool {
        self.end <= now
    }

    /// Interval length.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Always false (intervals are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Computes the maximum point overlap ("clique number" of the interval
/// graph) — the chromatic number an offline optimal coloring achieves.
pub fn max_overlap(intervals: &[Interval]) -> usize {
    let mut events: Vec<(u64, i32)> = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        events.push((iv.start, 1));
        events.push((iv.end, -1));
    }
    // Ends sort before starts at the same coordinate (half-open intervals).
    events.sort_by_key(|&(t, delta)| (t, delta));
    let mut cur = 0i32;
    let mut best = 0i32;
    for (_, delta) in events {
        cur += delta;
        best = best.max(cur);
    }
    best as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_semantics_half_open() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 20); // touching, not overlapping
        let c = Interval::new(9, 11);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_panics() {
        Interval::new(5, 5);
    }

    #[test]
    fn expiry() {
        let iv = Interval::new(0, 10);
        assert!(!iv.expired_at(9));
        assert!(iv.expired_at(10));
    }

    #[test]
    fn max_overlap_counts_cliques() {
        let ivs = vec![
            Interval::new(0, 10),
            Interval::new(5, 15),
            Interval::new(9, 12),
            Interval::new(20, 30),
        ];
        assert_eq!(max_overlap(&ivs), 3);
        assert_eq!(max_overlap(&[]), 0);
        // Touching intervals don't stack.
        assert_eq!(max_overlap(&[Interval::new(0, 5), Interval::new(5, 9)]), 1);
    }
}
