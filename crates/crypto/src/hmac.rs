//! HMAC-SHA-256 (RFC 2104), validated against RFC 4231 vectors.
//!
//! Used as a KDF and by the sealed-box construction in [`crate::sealed`].

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes HMAC-SHA-256 over `msg` with `key` (any length).
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = Sha256::digest(key);
        k[..32].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Simple HKDF-like expansion: derives `n` 32-byte blocks from `key`/`info`.
pub fn kdf_expand(key: &[u8], info: &[u8], out: &mut [u8]) {
    let mut counter = 1u8;
    let mut prev: Vec<u8> = Vec::new();
    let mut written = 0;
    while written < out.len() {
        let mut msg = prev.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(key, &msg);
        let take = (out.len() - written).min(32);
        out[written..written + take].copy_from_slice(&block[..take]);
        prev = block.to_vec();
        written += take;
        counter = counter.wrapping_add(1);
    }
}

/// Constant-time byte-slice equality (length must match).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2).map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            out.to_vec(),
            hex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            out.to_vec(),
            hex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let out = hmac_sha256(&key, &msg);
        assert_eq!(
            out.to_vec(),
            hex("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe")
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let out = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            out.to_vec(),
            hex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    #[test]
    fn kdf_expand_fills_requested_length() {
        let mut out = [0u8; 80];
        kdf_expand(b"secret", b"context", &mut out);
        assert!(out.iter().any(|&b| b != 0));
        // Different info yields different output.
        let mut out2 = [0u8; 80];
        kdf_expand(b"secret", b"other", &mut out2);
        assert_ne!(out, out2);
    }

    #[test]
    fn ct_eq_behaves() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
    }
}
