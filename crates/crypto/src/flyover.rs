//! Reservation authentication (paper §4.1, §4.3, Appendix A.4/A.6).
//!
//! This module implements the three cryptographic derivations at the heart
//! of the Hummingbird data plane:
//!
//! 1. the **reservation authentication key** `A_K = PRF_SV(ResInfo_K)`
//!    (Eq. 2), derived by the granting AS from its secret value `SV_K` over
//!    the exact 16-byte layout of Fig. 12;
//! 2. the **per-packet flyover MAC**
//!    `V_K = PRF_A(DstAddr ∥ PktLen ∥ TS)[:ℓ_tag]` (Eq. 3 / Eq. 7a) over the
//!    16-byte layout of Fig. 11, truncated to [`TAG_LEN`] = 6 bytes;
//! 3. the **aggregate MAC** `AggMAC = HopFieldMAC ⊕ FlyoverMAC` (Eq. 6),
//!    which folds the flyover tag into the SCION hop-field MAC so the tag
//!    costs no extra header bytes.
//!
//! Both PRF inputs are exactly one AES block, so the PRF costs a single
//! AES-128 invocation — this is what makes the paper's 308 ns border-router
//! budget possible.

use crate::aes::Aes128;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;

/// Tag length ℓ_tag in bytes (§5.4: 6 bytes ⇒ ~2^47 online brute-force work).
pub const TAG_LEN: usize = 6;

/// A 6-byte truncated MAC tag as carried in the packet header.
pub type Tag = [u8; TAG_LEN];

/// The static description of one flyover reservation (Eq. 1).
///
/// `ResInfo_K = (In, Eg, ResID, BW, StrT, Dur)`. The granting AS is implied
/// by the key used to authenticate it, not stored in the packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResInfo {
    /// Ingress interface ID (`ConsIngress`).
    pub ingress: u16,
    /// Egress interface ID (`ConsEgress`).
    pub egress: u16,
    /// Reservation ID, unique per interface pair within the validity period.
    /// 22-bit field on the wire (≈4 M concurrent reservations).
    pub res_id: u32,
    /// Reserved bandwidth in the 10-bit wire encoding (see
    /// `hummingbird_wire::bwcls`). The *encoded* value is authenticated.
    pub bw_encoded: u16,
    /// Absolute reservation start time (Unix seconds).
    pub res_start: u32,
    /// Reservation duration in seconds (16-bit on the wire).
    pub duration: u16,
}

/// Maximum encodable ResID (22 bits).
pub const RES_ID_MAX: u32 = (1 << 22) - 1;
/// Maximum encodable bandwidth class (10 bits).
pub const BW_ENC_MAX: u16 = (1 << 10) - 1;

impl ResInfo {
    /// Serializes to the 16-byte key-derivation input of Fig. 12:
    ///
    /// ```text
    ///  0..2  ConsIngress      2..4  ConsEgress
    ///  4..8  ResID(22) ∥ BW(10)
    ///  8..12 ResStart
    /// 12..14 ResDuration     14..16 zero padding
    /// ```
    pub fn to_kdf_block(&self) -> [u8; 16] {
        debug_assert!(self.res_id <= RES_ID_MAX, "ResID exceeds 22 bits");
        debug_assert!(self.bw_encoded <= BW_ENC_MAX, "BW exceeds 10 bits");
        let mut b = [0u8; 16];
        b[0..2].copy_from_slice(&self.ingress.to_be_bytes());
        b[2..4].copy_from_slice(&self.egress.to_be_bytes());
        let packed: u32 = (self.res_id << 10) | u32::from(self.bw_encoded & BW_ENC_MAX);
        b[4..8].copy_from_slice(&packed.to_be_bytes());
        b[8..12].copy_from_slice(&self.res_start.to_be_bytes());
        b[12..14].copy_from_slice(&self.duration.to_be_bytes());
        // b[14..16] stays zero (Fig. 12 "0 ∥ Padding").
        b
    }

    /// Absolute expiration time (`ResStart + ResDuration`).
    pub fn expiry(&self) -> u32 {
        self.res_start.saturating_add(u32::from(self.duration))
    }

    /// Whether `now` (Unix seconds) falls within `[ResStart, ResExp]`.
    ///
    /// Per Appendix A.7, the clock skew is deliberately *not* applied here to
    /// avoid double-counting traffic across adjacent reservations that share
    /// a ResID.
    pub fn is_active_at(&self, now: u32) -> bool {
        now >= self.res_start && now <= self.expiry()
    }
}

/// The AS-local secret value `SV_K` shared among its border routers.
///
/// Both PRF inputs in Hummingbird (Fig. 11 and Fig. 12) are exactly one
/// AES block, so the PRF is instantiated as a single raw AES-128
/// invocation — a PRP used as a PRF, which is what the paper's DPDK
/// implementation does ("Compute authentication key (A_i): 43 ns" = one
/// AES-NI block). [`crate::cmac`] remains available for variable-length
/// inputs elsewhere in the system.
#[derive(Clone)]
pub struct SecretValue {
    cipher: Aes128,
}

impl std::fmt::Debug for SecretValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretValue {{ .. }}")
    }
}

impl SecretValue {
    /// Creates a secret value from 16 raw bytes.
    pub fn new(key: [u8; 16]) -> Self {
        SecretValue { cipher: Aes128::new(&key) }
    }

    /// Derives the reservation authentication key `A_K` (Eq. 2),
    /// including the AES key extension of the result.
    pub fn derive_key(&self, info: &ResInfo) -> AuthKey {
        AuthKey::new(self.derive_key_bytes(info))
    }

    /// Derives only the raw key bytes without the AES key extension — the
    /// "Compute authentication key" step of Table 3 in isolation.
    #[inline]
    pub fn derive_key_bytes(&self, info: &ResInfo) -> [u8; 16] {
        self.cipher.encrypt(&info.to_kdf_block())
    }

    /// Derives the authentication keys of a whole burst in one AES sweep.
    ///
    /// The PRF inputs are serialized first, then encrypted together via
    /// [`Aes128::encrypt_blocks`] (round-major over the batch), then
    /// key-extended — the per-burst amortization the paper's DPDK router
    /// performs when it derives every `A_i` of a packet burst back to
    /// back. Appends one key per `ResInfo`, in order, to `out`; the
    /// result is element-wise identical to calling
    /// [`derive_key`](SecretValue::derive_key) per reservation.
    ///
    /// `scratch` holds the intermediate KDF blocks so hot loops can reuse
    /// one allocation across bursts (it is cleared on entry).
    pub fn derive_keys_batch(
        &self,
        infos: &[ResInfo],
        scratch: &mut Vec<[u8; 16]>,
        out: &mut Vec<AuthKey>,
    ) {
        scratch.clear();
        scratch.extend(infos.iter().map(ResInfo::to_kdf_block));
        self.cipher.encrypt_blocks(scratch);
        out.reserve(infos.len());
        out.extend(scratch.iter().map(|bytes| AuthKey::new(*bytes)));
    }
}

/// A reservation authentication key `A_K`, expanded and ready to MAC packets.
#[derive(Clone)]
pub struct AuthKey {
    key: [u8; 16],
    cipher: Aes128,
}

impl std::fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AuthKey {{ .. }}")
    }
}

impl PartialEq for AuthKey {
    fn eq(&self, other: &Self) -> bool {
        crate::hmac::ct_eq(&self.key, &other.key)
    }
}
impl Eq for AuthKey {}

impl AuthKey {
    /// Wraps raw key bytes (e.g. received through the control plane) and
    /// performs the AES key expansion ("AES-extend" step of Table 3).
    pub fn new(key: [u8; 16]) -> Self {
        AuthKey { key, cipher: Aes128::new(&key) }
    }

    /// Raw key bytes, for control-plane delivery (always sent sealed).
    pub fn to_bytes(&self) -> [u8; 16] {
        self.key
    }

    /// Computes the flyover MAC `V_K` (Eq. 7a) over the per-packet input:
    /// one AES invocation (the input of Fig. 11 is a single block),
    /// truncated to [`TAG_LEN`] bytes.
    #[inline]
    pub fn flyover_mac(&self, input: &FlyoverMacInput) -> Tag {
        let full = self.cipher.encrypt(&input.to_block());
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&full[..TAG_LEN]);
        tag
    }
}

/// Computes the flyover tags `V_K` of a whole burst in one multi-block
/// AES pass: `keys[i]` authenticates `inputs[i]`.
///
/// Each packet of a burst carries its own reservation key, so this is a
/// *multi-key* sweep — [`Aes128::encrypt_blocks_per_key`] still keeps
/// 4-8 independent blocks in flight (the per-block keys change which
/// round key each lane loads, not the data-flow shape), which is how the
/// paper's DPDK router amortizes the per-packet tag computation across a
/// burst. Appends one tag per input, in order, to `out`; the result is
/// element-wise identical to calling [`AuthKey::flyover_mac`] per packet.
///
/// `scratch` holds the intermediate MAC-input blocks so hot loops reuse
/// one allocation across bursts (it is cleared on entry).
///
/// # Panics
///
/// If `keys.len() != inputs.len()`.
pub fn flyover_tags_batch(
    keys: &[&AuthKey],
    inputs: &[FlyoverMacInput],
    scratch: &mut Vec<[u8; 16]>,
    out: &mut Vec<Tag>,
) {
    assert_eq!(keys.len(), inputs.len(), "one key per MAC input");
    flyover_tags_batch_with(|i| keys[i], inputs, scratch, out);
}

/// [`flyover_tags_batch`] with the per-packet key resolved through
/// `key_at(i)` instead of a materialized slice, so batch paths that
/// already index their keys (e.g. the router's per-burst dedupe table)
/// compute a whole burst's tags without allocating. `key_at` must be a
/// pure index lookup — it may be called more than once per input (the
/// interleave kernels probe each group's backends first), in ascending
/// order within each group.
pub fn flyover_tags_batch_with<'a>(
    key_at: impl Fn(usize) -> &'a AuthKey,
    inputs: &[FlyoverMacInput],
    scratch: &mut Vec<[u8; 16]>,
    out: &mut Vec<Tag>,
) {
    scratch.clear();
    scratch.extend(inputs.iter().map(FlyoverMacInput::to_block));
    Aes128::encrypt_blocks_with(|i| &key_at(i).cipher, scratch);
    out.reserve(inputs.len());
    out.extend(scratch.iter().map(|full| {
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&full[..TAG_LEN]);
        tag
    }));
}

/// A per-engine cache of expanded [`AuthKey`]s, so a reservation's AES
/// key schedule is computed once per epoch instead of once per packet.
///
/// The border router's per-packet budget (Table 3) charges one AES block
/// for deriving `A_i` *and* a full AES-128 key expansion for extending
/// it — but `ResInfo` is stable for a reservation's whole validity
/// period, so every packet after the first can reuse the expanded
/// schedule. Engines hold one cache each (hence per-shard under the
/// worker-ring runtime: no locking, and a reservation's entry lives
/// exactly where its packets are steered). Keys default to
/// [`ResInfo`]; the baseline engines instantiate the same cache over
/// their own key-hierarchy identifiers.
///
/// Replacement is generational (segmented LRU): entries insert into a
/// *hot* generation; when the hot generation fills, it becomes the
/// *cold* one and the previous cold generation is dropped. A hit in
/// cold promotes back to hot. This keeps lookups O(1), bounds the
/// footprint to two generations, and ages out expired reservations
/// without a sweeper. Hit/miss counters are exposed for
/// `DatapathStats`-style reporting.
///
/// # Example
///
/// The second packet of a reservation reuses the expanded schedule — the
/// closure passed to [`get_or_derive`](AuthKeyCache::get_or_derive) runs
/// only on a miss:
///
/// ```
/// use hummingbird_crypto::{AuthKeyCache, ResInfo, SecretValue};
///
/// let sv = SecretValue::new([6; 16]);
/// let info = ResInfo {
///     ingress: 0,
///     egress: 1,
///     res_id: 7,
///     bw_encoded: 700,
///     res_start: 1_700_000_000,
///     duration: 600,
/// };
///
/// let mut cache: AuthKeyCache = AuthKeyCache::new(1024);
/// let first = cache.get_or_derive(&info, || sv.derive_key(&info)).clone();
/// let again = cache.get_or_derive(&info, || unreachable!("second lookup hits")).clone();
/// assert_eq!(first, again);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Clone, Debug)]
pub struct AuthKeyCache<K = ResInfo> {
    hot: HashMap<K, AuthKey>,
    cold: HashMap<K, AuthKey>,
    /// Entries per generation (total footprint ≤ 2×).
    generation_capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone> AuthKeyCache<K> {
    /// Creates a cache holding at most ~`capacity` expanded keys
    /// (internally two generations of `capacity / 2`, minimum 1).
    pub fn new(capacity: usize) -> Self {
        let generation_capacity = (capacity / 2).max(1);
        AuthKeyCache {
            hot: HashMap::with_capacity(generation_capacity),
            cold: HashMap::new(),
            generation_capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks `key` up, counting a hit or miss; a hit in the cold
    /// generation promotes the entry back to hot.
    pub fn lookup(&mut self, key: &K) -> Option<&AuthKey> {
        if !self.hot.contains_key(key) {
            match self.cold.remove(key) {
                Some(v) => {
                    self.hits += 1;
                    self.promote(key.clone(), v);
                }
                None => {
                    self.misses += 1;
                    return None;
                }
            }
        } else {
            self.hits += 1;
        }
        self.hot.get(key)
    }

    /// Inserts an expanded key (no counter change — pair with a failed
    /// [`lookup`](AuthKeyCache::lookup)).
    pub fn insert(&mut self, key: K, value: AuthKey) {
        self.promote(key, value);
    }

    /// The cached key for `key`, deriving (and caching) it on a miss.
    ///
    /// (Two map probes on the hot-generation fast path — `contains_key`
    /// then `get` — rather than delegating to [`lookup`] and probing a
    /// third time; the split sidesteps the NLL limitation on returning
    /// a borrow out of one arm while mutating in the other.)
    ///
    /// [`lookup`]: AuthKeyCache::lookup
    pub fn get_or_derive(&mut self, key: &K, derive: impl FnOnce() -> AuthKey) -> &AuthKey {
        if self.hot.contains_key(key) {
            self.hits += 1;
        } else {
            match self.cold.remove(key) {
                Some(value) => {
                    self.hits += 1;
                    self.promote(key.clone(), value);
                }
                None => {
                    self.misses += 1;
                    let value = derive();
                    self.promote(key.clone(), value);
                }
            }
        }
        self.hot.get(key).expect("resident after count/promote")
    }

    /// Records a hit that bypassed [`lookup`](AuthKeyCache::lookup) —
    /// used by batch paths that dedupe repeated keys within one burst
    /// (the repeat *would* have hit had the packets been processed
    /// sequentially, so counters stay comparable across paths).
    ///
    /// Counter semantics under batching: a batch path performs all of a
    /// burst's lookups against the cache state at burst start and
    /// inserts afterwards, while sequential processing interleaves
    /// inserts between lookups. The counts therefore match exactly
    /// unless a generation boundary falls *inside* the burst — a
    /// sequential mid-burst insert that flips generations can evict a
    /// key (turning a later lookup into a miss) or, conversely, a
    /// cold-resident key can survive one lookup longer under the batch
    /// order. With the default capacity a flip occurs once per
    /// thousands of distinct reservations, so the counters are exact in
    /// steady state and off by at most the burst's repeats around a
    /// flip. Counters are diagnostics; derivation is deterministic, so
    /// verdicts never depend on them.
    pub fn record_burst_hit(&mut self) {
        self.hits += 1;
    }

    fn promote(&mut self, key: K, value: AuthKey) {
        if self.hot.len() >= self.generation_capacity && !self.hot.contains_key(&key) {
            self.cold = std::mem::take(&mut self.hot);
            self.hot.reserve(self.generation_capacity);
        }
        self.hot.insert(key, value);
    }

    /// Cache hits since creation / the last counter reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation / the last counter reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Resets the hit/miss counters (entries are kept).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of currently cached keys (both generations).
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// Whether the cache holds no keys.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.cold.is_empty()
    }
}

/// Per-burst key dedupe + cache resolution shared by every batched
/// engine: the scaffolding that used to be copied between
/// `BorderRouter::process_batch` and `EpicDatapath::process_batch`
/// (burst-local uniq map, the [`AuthKeyCache::record_burst_hit`]
/// counter dance, the pass-2 key iterator), generic over the cache key
/// so the counter-parity invariant lives in one place.
///
/// Protocol, per burst:
///
/// 1. [`begin`](BurstKeyResolver::begin) clears the burst-local state;
/// 2. [`visit`](BurstKeyResolver::visit) registers each keyed packet's
///    identity in burst order — the first appearance does exactly one
///    cache lookup (queueing the id for the derive sweep on a miss),
///    repeats count as burst hits;
/// 3. the engine runs its batch derive sweep over
///    [`pending`](BurstKeyResolver::pending) and hands the keys back in
///    the same order via [`fill_pending`](BurstKeyResolver::fill_pending)
///    (which also populates the cache);
/// 4. [`key_of`](BurstKeyResolver::key_of) serves pass 2 / the tag sweep
///    with the resolved key of the `i`-th visited packet.
///
/// The invariant this encodes: processed sequentially, a burst's first
/// packet on an identity would miss (derive + insert) and every repeat
/// would hit — so the batch path performs exactly one lookup and at most
/// one insert per distinct identity, counts repeats via
/// `record_burst_hit`, and hit/miss counters stay comparable across the
/// sequential and batched paths (see `record_burst_hit` for the
/// generation-boundary caveat).
#[derive(Clone, Debug)]
pub struct BurstKeyResolver<K> {
    /// The burst's distinct identities, in first-appearance order.
    uniq_ids: Vec<K>,
    /// Burst-local dedupe map: identity → index into `uniq_ids`.
    uniq_index: HashMap<K, usize>,
    /// One resolved key per entry of `uniq_ids` (`None` until resolved
    /// from the cache or the derive sweep).
    uniq_keys: Vec<Option<AuthKey>>,
    /// The `uniq_keys` slots the derive sweep fills, in miss order.
    pending_slots: Vec<usize>,
    /// Per visited packet: index into `uniq_keys`.
    key_of_pkt: Vec<usize>,
}

impl<K> Default for BurstKeyResolver<K> {
    fn default() -> Self {
        BurstKeyResolver {
            uniq_ids: Vec::new(),
            uniq_index: HashMap::new(),
            uniq_keys: Vec::new(),
            pending_slots: Vec::new(),
            key_of_pkt: Vec::new(),
        }
    }
}

impl<K: Eq + Hash + Clone> BurstKeyResolver<K> {
    /// Creates an empty resolver (reusable across bursts; steady-state
    /// bursts allocate nothing once the vectors reach burst size).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the burst-local state for a new burst.
    pub fn begin(&mut self) {
        self.uniq_ids.clear();
        self.uniq_index.clear();
        self.uniq_keys.clear();
        self.pending_slots.clear();
        self.key_of_pkt.clear();
    }

    /// Registers the identity of the next keyed packet of the burst and
    /// resolves it against `cache`: a repeat within the burst counts as
    /// a cache hit (it *would* have hit sequentially), a first
    /// appearance does one [`AuthKeyCache::lookup`] and on a miss queues
    /// the id for the engine's derive sweep.
    pub fn visit(&mut self, id: K, cache: Option<&mut AuthKeyCache<K>>) {
        let slot = match self.uniq_index.entry(id) {
            Entry::Occupied(e) => {
                if let Some(cache) = cache {
                    cache.record_burst_hit();
                }
                *e.get()
            }
            Entry::Vacant(e) => {
                let slot = self.uniq_ids.len();
                let id = e.key().clone();
                e.insert(slot);
                self.uniq_ids.push(id);
                self.uniq_keys.push(cache.and_then(|c| c.lookup(&self.uniq_ids[slot]).cloned()));
                if self.uniq_keys[slot].is_none() {
                    self.pending_slots.push(slot);
                }
                slot
            }
        };
        self.key_of_pkt.push(slot);
    }

    /// The identities that missed the cache, in miss order — the input
    /// of the engine's batch derive sweep.
    pub fn pending(&self) -> impl Iterator<Item = &K> + '_ {
        self.pending_slots.iter().map(|&slot| &self.uniq_ids[slot])
    }

    /// Installs the derive sweep's keys — one per
    /// [`pending`](BurstKeyResolver::pending) identity, same order —
    /// inserting each into `cache` (miss already counted by
    /// [`visit`](BurstKeyResolver::visit)).
    ///
    /// # Panics
    ///
    /// If `keys` yields fewer keys than there were pending identities —
    /// an engine bug the later [`key_of`](BurstKeyResolver::key_of)
    /// would otherwise surface confusingly.
    pub fn fill_pending(
        &mut self,
        keys: impl IntoIterator<Item = AuthKey>,
        mut cache: Option<&mut AuthKeyCache<K>>,
    ) {
        let mut keys = keys.into_iter();
        for &slot in &self.pending_slots {
            let key = keys.next().expect("one derived key per pending identity");
            if let Some(cache) = cache.as_deref_mut() {
                cache.insert(self.uniq_ids[slot].clone(), key.clone());
            }
            self.uniq_keys[slot] = Some(key);
        }
        self.pending_slots.clear();
    }

    /// The distinct identities of the burst, in first-appearance order
    /// (e.g. for deduplicated policer pre-touching).
    pub fn uniq_ids(&self) -> &[K] {
        &self.uniq_ids
    }

    /// The resolved key of the `i`-th visited packet.
    ///
    /// # Panics
    ///
    /// If the key is still unresolved (the engine skipped
    /// [`fill_pending`](BurstKeyResolver::fill_pending)).
    pub fn key_of(&self, i: usize) -> &AuthKey {
        self.uniq_keys[self.key_of_pkt[i]].as_ref().expect("every burst key resolved")
    }
}

/// The per-packet MAC input of Fig. 11 (exactly one AES block):
///
/// ```text
///  0..4   DstISD (16-bit value in a 32-bit slot)
///  4..8   DstAS (low 32 bits)
///  8..10  PktLen          10..12 ResStartOffset
/// 12..14  MillisTimestamp 14..16 Counter
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlyoverMacInput {
    /// Destination ISD identifier.
    pub dst_isd: u16,
    /// Destination AS number (SCION ASes are 48-bit; the MAC input carries
    /// the low 32 bits so the whole input fits one AES block).
    pub dst_as: u64,
    /// Total packet length (Eq. 7d: `PayloadLen + 4·HdrLen`).
    pub pkt_len: u16,
    /// Offset of the reservation start from `BaseTimestamp` (seconds).
    pub res_start_offset: u16,
    /// Millisecond-granularity timestamp offset from `BaseTimestamp`.
    pub millis_ts: u16,
    /// Per-packet counter making `(BaseTS, MillisTS, Counter)` unique.
    pub counter: u16,
}

impl FlyoverMacInput {
    /// Serializes to the 16-byte block of Fig. 11.
    pub fn to_block(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[2..4].copy_from_slice(&self.dst_isd.to_be_bytes());
        b[4..8].copy_from_slice(&((self.dst_as & 0xffff_ffff) as u32).to_be_bytes());
        b[8..10].copy_from_slice(&self.pkt_len.to_be_bytes());
        b[10..12].copy_from_slice(&self.res_start_offset.to_be_bytes());
        b[12..14].copy_from_slice(&self.millis_ts.to_be_bytes());
        b[14..16].copy_from_slice(&self.counter.to_be_bytes());
        b
    }
}

/// Aggregates (or strips) a flyover MAC into a hop-field MAC (Eq. 6).
///
/// XOR is an involution, so the same function both combines at the source
/// and recovers the plain hop-field MAC at the router.
pub fn aggregate_mac(hop_field_mac: &Tag, flyover_mac: &Tag) -> Tag {
    let mut out = [0u8; TAG_LEN];
    for i in 0..TAG_LEN {
        out[i] = hop_field_mac[i] ^ flyover_mac[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_info() -> ResInfo {
        ResInfo {
            ingress: 2,
            egress: 7,
            res_id: 1234,
            bw_encoded: 321,
            res_start: 1_700_000_000,
            duration: 300,
        }
    }

    #[test]
    fn kdf_block_layout() {
        let info = ResInfo {
            ingress: 0x0102,
            egress: 0x0304,
            res_id: 0x3F_FFFF, // max 22-bit
            bw_encoded: 0x3FF, // max 10-bit
            res_start: 0xAABBCCDD,
            duration: 0x1122,
        };
        let b = info.to_kdf_block();
        assert_eq!(&b[0..2], &[0x01, 0x02]);
        assert_eq!(&b[2..4], &[0x03, 0x04]);
        // (0x3FFFFF << 10) | 0x3FF = 0xFFFFFFFF
        assert_eq!(&b[4..8], &[0xFF, 0xFF, 0xFF, 0xFF]);
        assert_eq!(&b[8..12], &[0xAA, 0xBB, 0xCC, 0xDD]);
        assert_eq!(&b[12..14], &[0x11, 0x22]);
        assert_eq!(&b[14..16], &[0, 0]);
    }

    #[test]
    fn derive_key_deterministic_per_sv() {
        let sv1 = SecretValue::new([1u8; 16]);
        let sv2 = SecretValue::new([2u8; 16]);
        let info = sample_info();
        assert_eq!(sv1.derive_key(&info), sv1.derive_key(&info));
        assert_ne!(sv1.derive_key(&info), sv2.derive_key(&info));
    }

    #[test]
    fn key_changes_with_any_resinfo_field() {
        let sv = SecretValue::new([3u8; 16]);
        let base = sample_info();
        let k = sv.derive_key(&base);
        let variations = [
            ResInfo { ingress: 3, ..base },
            ResInfo { egress: 8, ..base },
            ResInfo { res_id: 1235, ..base },
            ResInfo { bw_encoded: 322, ..base },
            ResInfo { res_start: base.res_start + 1, ..base },
            ResInfo { duration: 301, ..base },
        ];
        for v in variations {
            assert_ne!(sv.derive_key(&v), k, "field change must alter key: {v:?}");
        }
    }

    #[test]
    fn flyover_mac_is_6_bytes_and_input_sensitive() {
        let sv = SecretValue::new([4u8; 16]);
        let key = sv.derive_key(&sample_info());
        let input = FlyoverMacInput {
            dst_isd: 1,
            dst_as: 0xff00_0000_0110,
            pkt_len: 1500,
            res_start_offset: 60,
            millis_ts: 345,
            counter: 9,
        };
        let tag = key.flyover_mac(&input);
        assert_eq!(tag.len(), TAG_LEN);
        let tag2 = key.flyover_mac(&FlyoverMacInput { counter: 10, ..input });
        assert_ne!(tag, tag2, "counter must be authenticated");
        let tag3 = key.flyover_mac(&FlyoverMacInput { pkt_len: 1501, ..input });
        assert_ne!(tag, tag3, "packet length must be authenticated");
        let tag4 = key.flyover_mac(&FlyoverMacInput { dst_isd: 2, ..input });
        assert_ne!(tag, tag4, "destination must be authenticated (anti-stealing)");
    }

    #[test]
    fn aggregate_mac_is_involution() {
        let hf = [1, 2, 3, 4, 5, 6];
        let fly = [9, 9, 9, 9, 9, 9];
        let agg = aggregate_mac(&hf, &fly);
        assert_eq!(aggregate_mac(&agg, &fly), hf);
        assert_eq!(aggregate_mac(&agg, &hf), fly);
    }

    #[test]
    fn auth_key_roundtrips_via_bytes() {
        let sv = SecretValue::new([5u8; 16]);
        let k = sv.derive_key(&sample_info());
        let k2 = AuthKey::new(k.to_bytes());
        let input = FlyoverMacInput {
            dst_isd: 1,
            dst_as: 2,
            pkt_len: 100,
            res_start_offset: 0,
            millis_ts: 0,
            counter: 0,
        };
        assert_eq!(k.flyover_mac(&input), k2.flyover_mac(&input));
    }

    #[test]
    fn derive_keys_batch_matches_sequential() {
        let sv = SecretValue::new([6u8; 16]);
        let base = sample_info();
        let infos: Vec<ResInfo> = (0..17).map(|i| ResInfo { res_id: 100 + i, ..base }).collect();
        let mut scratch = Vec::new();
        let mut batch = Vec::new();
        sv.derive_keys_batch(&infos, &mut scratch, &mut batch);
        assert_eq!(batch.len(), infos.len());
        for (info, key) in infos.iter().zip(&batch) {
            assert_eq!(sv.derive_key(info), *key);
        }
        // Appends without clearing `out`, so bursts can be accumulated.
        sv.derive_keys_batch(&infos[..2], &mut scratch, &mut batch);
        assert_eq!(batch.len(), infos.len() + 2);
        // Empty bursts are a no-op.
        sv.derive_keys_batch(&[], &mut scratch, &mut batch);
        assert_eq!(batch.len(), infos.len() + 2);
    }

    #[test]
    fn flyover_tags_batch_matches_per_packet_macs() {
        let sv = SecretValue::new([7u8; 16]);
        let base = sample_info();
        // Distinct keys per packet — the multi-key sweep shape.
        let keys: Vec<AuthKey> =
            (0..13).map(|i| sv.derive_key(&ResInfo { res_id: 500 + i, ..base })).collect();
        let inputs: Vec<FlyoverMacInput> = (0..13)
            .map(|i| FlyoverMacInput {
                dst_isd: 1,
                dst_as: 0x20,
                pkt_len: 100 + i,
                res_start_offset: 50,
                millis_ts: i,
                counter: i,
            })
            .collect();
        let refs: Vec<&AuthKey> = keys.iter().collect();
        let mut scratch = Vec::new();
        let mut tags = Vec::new();
        flyover_tags_batch(&refs, &inputs, &mut scratch, &mut tags);
        assert_eq!(tags.len(), inputs.len());
        for ((key, input), tag) in refs.iter().zip(&inputs).zip(&tags) {
            assert_eq!(key.flyover_mac(input), *tag);
        }
        // Appends without clearing; empty bursts are a no-op.
        flyover_tags_batch(&refs[..1], &inputs[..1], &mut scratch, &mut tags);
        assert_eq!(tags.len(), 14);
        flyover_tags_batch(&[], &[], &mut scratch, &mut tags);
        assert_eq!(tags.len(), 14);
    }

    #[test]
    #[should_panic(expected = "one key per MAC input")]
    fn flyover_tags_batch_checks_lengths() {
        let key = AuthKey::new([1u8; 16]);
        flyover_tags_batch(&[&key], &[], &mut Vec::new(), &mut Vec::new());
    }

    #[test]
    fn auth_key_cache_counts_and_derives_once() {
        let sv = SecretValue::new([8u8; 16]);
        let info = sample_info();
        let mut cache: AuthKeyCache = AuthKeyCache::new(64);
        let mut derivations = 0;
        for _ in 0..5 {
            let key = cache.get_or_derive(&info, || {
                derivations += 1;
                sv.derive_key(&info)
            });
            assert_eq!(*key, sv.derive_key(&info));
        }
        assert_eq!(derivations, 1, "schedule expanded once per reservation");
        assert_eq!((cache.hits(), cache.misses()), (4, 1));
        cache.record_burst_hit();
        assert_eq!(cache.hits(), 5);
        cache.reset_counters();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn auth_key_cache_evicts_generationally_and_promotes() {
        let sv = SecretValue::new([9u8; 16]);
        let base = sample_info();
        let info = |i: u32| ResInfo { res_id: i, ..base };
        // Capacity 4 → generations of 2.
        let mut cache: AuthKeyCache = AuthKeyCache::new(4);
        for i in 0..2 {
            cache.get_or_derive(&info(i), || sv.derive_key(&info(i)));
        }
        // Third insert flips generations; 0 and 1 move to cold.
        cache.get_or_derive(&info(2), || sv.derive_key(&info(2)));
        assert_eq!(cache.len(), 3);
        // A cold hit promotes back to hot.
        assert!(cache.lookup(&info(0)).is_some());
        // Fill until the original cold generation is dropped.
        for i in 3..7 {
            cache.get_or_derive(&info(i), || sv.derive_key(&info(i)));
        }
        assert!(cache.len() <= 4, "footprint bounded by two generations");
        let misses_before = cache.misses();
        assert!(cache.lookup(&info(1)).is_none(), "aged-out entry misses");
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn activity_window_inclusive() {
        let info = sample_info();
        assert!(!info.is_active_at(info.res_start - 1));
        assert!(info.is_active_at(info.res_start));
        assert!(info.is_active_at(info.expiry()));
        assert!(!info.is_active_at(info.expiry() + 1));
    }
}
