//! AES-CMAC (RFC 4493 / NIST SP 800-38B).
//!
//! Hummingbird's `PRF` (Eq. 2 and Eq. 3 of the paper) must be a secure PRF
//! whose output is usable as a symmetric key / MAC. AES-CMAC over AES-128 is
//! the standard choice for variable-length inputs; for inputs that fit in one
//! block the paper's DPDK implementation uses a single AES invocation, which
//! CMAC degenerates to (one XOR + one block encryption).
//!
//! Validated against the RFC 4493 test vectors.

use crate::aes::{Aes128, BLOCK_SIZE};

const RB: u8 = 0x87;

/// AES-CMAC instance with precomputed subkeys `K1`, `K2`.
#[derive(Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; BLOCK_SIZE],
    k2: [u8; BLOCK_SIZE],
}

impl std::fmt::Debug for Cmac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Cmac {{ .. }}")
    }
}

fn dbl(block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
    let mut out = [0u8; BLOCK_SIZE];
    let mut carry = 0u8;
    for i in (0..BLOCK_SIZE).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = block[i] >> 7;
    }
    if carry == 1 {
        out[BLOCK_SIZE - 1] ^= RB;
    }
    out
}

impl Cmac {
    /// Creates a CMAC instance from a raw 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        Self::from_cipher(Aes128::new(key))
    }

    /// Creates a CMAC instance from an already-expanded cipher.
    pub fn from_cipher(cipher: Aes128) -> Self {
        let l = cipher.encrypt(&[0u8; BLOCK_SIZE]);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// Computes the 16-byte CMAC tag over `msg`.
    ///
    /// Messages that fit one block — the hop-field MAC's common case —
    /// take a fast path of exactly one XOR and one block encryption
    /// (what the paper's §5.4 / DPDK implementation does for its
    /// single-block PRF inputs): CMAC degenerates to `E(M ⊕ K1)` for a
    /// complete block and `E(pad(M) ⊕ K2)` otherwise.
    pub fn mac(&self, msg: &[u8]) -> [u8; BLOCK_SIZE] {
        if msg.len() <= BLOCK_SIZE {
            let mut x = [0u8; BLOCK_SIZE];
            if msg.len() == BLOCK_SIZE {
                for (b, (m, k)) in x.iter_mut().zip(msg.iter().zip(self.k1.iter())) {
                    *b = m ^ k;
                }
            } else {
                x[..msg.len()].copy_from_slice(msg);
                x[msg.len()] = 0x80;
                for (b, k) in x.iter_mut().zip(self.k2.iter()) {
                    *b ^= k;
                }
            }
            self.cipher.encrypt_block(&mut x);
            return x;
        }

        // General path: more than one block (the fast path above handled
        // empty and single-block messages).
        let n_blocks = msg.len().div_ceil(BLOCK_SIZE);
        let (full_blocks, last_complete) = (n_blocks - 1, msg.len().is_multiple_of(BLOCK_SIZE));

        let mut x = [0u8; BLOCK_SIZE];
        for i in 0..full_blocks {
            for j in 0..BLOCK_SIZE {
                x[j] ^= msg[i * BLOCK_SIZE + j];
            }
            self.cipher.encrypt_block(&mut x);
        }

        // Final block: either M_n ^ K1 (complete) or padded(M_n) ^ K2.
        let mut last = [0u8; BLOCK_SIZE];
        if last_complete {
            last.copy_from_slice(&msg[full_blocks * BLOCK_SIZE..]);
            for (b, k) in last.iter_mut().zip(self.k1.iter()) {
                *b ^= k;
            }
        } else {
            let rem = &msg[full_blocks * BLOCK_SIZE..];
            last[..rem.len()].copy_from_slice(rem);
            last[rem.len()] = 0x80;
            for (b, k) in last.iter_mut().zip(self.k2.iter()) {
                *b ^= k;
            }
        }
        for j in 0..BLOCK_SIZE {
            x[j] ^= last[j];
        }
        self.cipher.encrypt_block(&mut x);
        x
    }

    /// Computes the CMAC truncated to `len` bytes (`len <= 16`).
    ///
    /// The paper truncates packet tags to `ℓ_tag = 6` bytes (§5.4).
    pub fn mac_truncated(&self, msg: &[u8], len: usize) -> Vec<u8> {
        assert!(len <= BLOCK_SIZE, "truncation length exceeds block size");
        self.mac(msg)[..len].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2).map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap()).collect()
    }

    fn rfc4493_key() -> [u8; 16] {
        let mut k = [0u8; 16];
        k.copy_from_slice(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        k
    }

    #[test]
    fn rfc4493_subkeys() {
        let cmac = Cmac::new(&rfc4493_key());
        assert_eq!(cmac.k1.to_vec(), hex("fbeed618357133667c85e08f7236a8de"));
        assert_eq!(cmac.k2.to_vec(), hex("f7ddac306ae266ccf90bc11ee46d513b"));
    }

    #[test]
    fn rfc4493_example_1_empty() {
        let cmac = Cmac::new(&rfc4493_key());
        assert_eq!(cmac.mac(b"").to_vec(), hex("bb1d6929e95937287fa37d129b756746"));
    }

    #[test]
    fn rfc4493_example_2_16_bytes() {
        let cmac = Cmac::new(&rfc4493_key());
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(cmac.mac(&msg).to_vec(), hex("070a16b46b4d4144f79bdd9dd04a287c"));
    }

    #[test]
    fn rfc4493_example_3_40_bytes() {
        let cmac = Cmac::new(&rfc4493_key());
        let msg = hex("6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411");
        assert_eq!(cmac.mac(&msg).to_vec(), hex("dfa66747de9ae63030ca32611497c827"));
    }

    #[test]
    fn rfc4493_example_4_64_bytes() {
        let cmac = Cmac::new(&rfc4493_key());
        let msg = hex("6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710");
        assert_eq!(cmac.mac(&msg).to_vec(), hex("51f0bebf7e3b9d92fc49741779363cfe"));
    }

    /// RFC 4493 §2.4 as literally as possible, without the single-block
    /// fast path — the oracle for `mac`'s two code paths.
    fn reference_cmac(cmac: &Cmac, msg: &[u8]) -> [u8; BLOCK_SIZE] {
        let n = msg.len().div_ceil(BLOCK_SIZE).max(1);
        let complete = !msg.is_empty() && msg.len().is_multiple_of(BLOCK_SIZE);
        let mut last = [0u8; BLOCK_SIZE];
        let rem = &msg[(n - 1) * BLOCK_SIZE..];
        last[..rem.len()].copy_from_slice(rem);
        if !complete {
            last[rem.len()] = 0x80;
        }
        let subkey = if complete { &cmac.k1 } else { &cmac.k2 };
        for (b, k) in last.iter_mut().zip(subkey.iter()) {
            *b ^= k;
        }
        let mut x = [0u8; BLOCK_SIZE];
        for i in 0..n - 1 {
            for j in 0..BLOCK_SIZE {
                x[j] ^= msg[i * BLOCK_SIZE + j];
            }
            cmac.cipher.encrypt_block(&mut x);
        }
        for j in 0..BLOCK_SIZE {
            x[j] ^= last[j];
        }
        cmac.cipher.encrypt_block(&mut x);
        x
    }

    #[test]
    fn fast_path_matches_reference_at_every_boundary_length() {
        let cmac = Cmac::new(&rfc4493_key());
        let msg: Vec<u8> = (0..48).map(|i| i as u8 * 3).collect();
        for len in 0..=48 {
            assert_eq!(
                cmac.mac(&msg[..len]),
                reference_cmac(&cmac, &msg[..len]),
                "length {len} diverged"
            );
        }
    }

    #[test]
    fn truncation_is_prefix() {
        let cmac = Cmac::new(&[9u8; 16]);
        let full = cmac.mac(b"hello world");
        let trunc = cmac.mac_truncated(b"hello world", 6);
        assert_eq!(&full[..6], trunc.as_slice());
    }

    #[test]
    #[should_panic(expected = "truncation length")]
    fn truncation_length_checked() {
        Cmac::new(&[0u8; 16]).mac_truncated(b"x", 17);
    }
}
