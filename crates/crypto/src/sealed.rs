//! Sealed-box hybrid encryption for reservation delivery.
//!
//! In the redeem flow (§4.2, steps ❺–❽), the end host includes an ephemeral
//! public key in its redeem request; the issuing AS encrypts
//! `(ResInfo_K, A_K)` under that key before posting it back through the asset
//! contract, so the authentication key never appears in plaintext on chain.
//!
//! Construction (ECIES-style over the demo Schnorr group):
//! `eph = G^r`, `shared = DH(r, recipient)`, keys = KDF(shared),
//! ciphertext = stream-XOR (AES-CTR) and tag = HMAC-SHA-256 over
//! `eph ∥ nonce ∥ ciphertext` (encrypt-then-MAC).
//!
//! The module also provides a [`SecretBox`]: AES-CTR with an AES-CMAC
//! tag (encrypt-then-MAC) under a caller-provided 16-byte key, for flows
//! where sender and recipient *already* share a secret (e.g. reservation
//! renewals, which ratchet a wrapping key off the previous window's
//! `A_K`). All-AES on purpose: the renewal fast path seals one of these
//! per renewal, and AES rides the same hardware path as the data-plane
//! key derivation (sub-microsecond) where SHA-256 costs microseconds.

use crate::aes::Aes128;
use crate::cmac::Cmac;
use crate::hmac::{ct_eq, hmac_sha256, kdf_expand};
use crate::sig::{PublicKey, SecretKey};
use rand::Rng;

/// A sealed (encrypted + authenticated) message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBox {
    /// Sender's ephemeral public key.
    pub ephemeral: PublicKey,
    /// Random 16-byte nonce (CTR IV).
    pub nonce: [u8; 16],
    /// AES-CTR ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA-256 tag (truncated to 16 bytes).
    pub tag: [u8; 16],
}

/// Errors from opening a sealed box.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SealError {
    /// The authentication tag did not verify.
    TagMismatch,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::TagMismatch => f.write_str("sealed box authentication tag mismatch"),
        }
    }
}

impl std::error::Error for SealError {}

fn derive_keys(shared: &[u8; 32], eph: &PublicKey) -> ([u8; 16], [u8; 32]) {
    let mut okm = [0u8; 48];
    let mut info = Vec::with_capacity(32);
    info.extend_from_slice(b"hummingbird-sealed-box");
    info.extend_from_slice(&eph.to_bytes());
    kdf_expand(shared, &info, &mut okm);
    let mut enc = [0u8; 16];
    enc.copy_from_slice(&okm[..16]);
    let mut mac = [0u8; 32];
    mac.copy_from_slice(&okm[16..48]);
    (enc, mac)
}

fn ctr_xor(key: &[u8; 16], nonce: &[u8; 16], data: &mut [u8]) {
    /// Counter blocks per batch: matches the widest interleave kernel.
    const CHUNK: usize = 8;
    let cipher = Aes128::new(key);
    let mut counter = u128::from_be_bytes(*nonce);
    // Counter blocks are independent, so the keystream goes through the
    // interleaved batch path, CHUNK blocks at a time from a stack
    // buffer — no allocation, any payload size.
    for span in data.chunks_mut(16 * CHUNK) {
        let mut keystream = [[0u8; 16]; CHUNK];
        let blocks = span.len().div_ceil(16);
        for ks in keystream.iter_mut().take(blocks) {
            *ks = counter.to_be_bytes();
            counter = counter.wrapping_add(1);
        }
        cipher.encrypt_blocks(&mut keystream[..blocks]);
        for (chunk, ks) in span.chunks_mut(16).zip(&keystream) {
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

fn mac_input(eph: &PublicKey, nonce: &[u8; 16], ciphertext: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(32 + ciphertext.len());
    m.extend_from_slice(&eph.to_bytes());
    m.extend_from_slice(nonce);
    m.extend_from_slice(ciphertext);
    m
}

/// Encrypts `plaintext` to `recipient`.
pub fn seal<R: Rng + ?Sized>(recipient: &PublicKey, plaintext: &[u8], rng: &mut R) -> SealedBox {
    let eph_sk = SecretKey::generate(rng);
    let eph = eph_sk.public();
    let shared = eph_sk.dh(recipient);
    let (enc_key, mac_key) = derive_keys(&shared, &eph);
    let mut nonce = [0u8; 16];
    rng.fill(&mut nonce);
    let mut ciphertext = plaintext.to_vec();
    ctr_xor(&enc_key, &nonce, &mut ciphertext);
    let full_tag = hmac_sha256(&mac_key, &mac_input(&eph, &nonce, &ciphertext));
    let mut tag = [0u8; 16];
    tag.copy_from_slice(&full_tag[..16]);
    SealedBox { ephemeral: eph, nonce, ciphertext, tag }
}

/// Decrypts a sealed box with the recipient's secret key.
pub fn open(recipient: &SecretKey, boxed: &SealedBox) -> Result<Vec<u8>, SealError> {
    let shared = recipient.dh(&boxed.ephemeral);
    let (enc_key, mac_key) = derive_keys(&shared, &boxed.ephemeral);
    let full_tag =
        hmac_sha256(&mac_key, &mac_input(&boxed.ephemeral, &boxed.nonce, &boxed.ciphertext));
    if !ct_eq(&full_tag[..16], &boxed.tag) {
        return Err(SealError::TagMismatch);
    }
    let mut plaintext = boxed.ciphertext.clone();
    ctr_xor(&enc_key, &boxed.nonce, &mut plaintext);
    Ok(plaintext)
}

/// A symmetric sealed message: AES-CTR ciphertext with an AES-CMAC tag,
/// keyed by a pre-shared 16-byte secret instead of an ephemeral DH.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecretBox {
    /// Random 16-byte nonce (CTR IV).
    pub nonce: [u8; 16],
    /// AES-CTR ciphertext.
    pub ciphertext: Vec<u8>,
    /// AES-CMAC tag over `nonce ∥ ciphertext`.
    pub tag: [u8; 16],
}

/// Splits the box key into independent encryption and MAC subkeys —
/// CMAC as the PRF in a counter-mode KDF (NIST SP 800-108).
fn derive_symmetric_keys(key: &[u8; 16]) -> ([u8; 16], [u8; 16]) {
    let prf = Cmac::new(key);
    let enc = prf.mac(b"\x01hummingbird-secret-box");
    let mac = prf.mac(b"\x02hummingbird-secret-box");
    (enc, mac)
}

/// Encrypts `plaintext` under a pre-shared 16-byte key
/// (encrypt-then-MAC, tag over `nonce ∥ ciphertext`).
pub fn seal_with_key<R: Rng + ?Sized>(key: &[u8; 16], plaintext: &[u8], rng: &mut R) -> SecretBox {
    let (enc_key, mac_key) = derive_symmetric_keys(key);
    let mut nonce = [0u8; 16];
    rng.fill(&mut nonce);
    let mut ciphertext = plaintext.to_vec();
    ctr_xor(&enc_key, &nonce, &mut ciphertext);
    let mut m = Vec::with_capacity(16 + ciphertext.len());
    m.extend_from_slice(&nonce);
    m.extend_from_slice(&ciphertext);
    let tag = Cmac::new(&mac_key).mac(&m);
    SecretBox { nonce, ciphertext, tag }
}

/// Decrypts a [`SecretBox`] with the pre-shared key.
pub fn open_with_key(key: &[u8; 16], boxed: &SecretBox) -> Result<Vec<u8>, SealError> {
    let (enc_key, mac_key) = derive_symmetric_keys(key);
    let mut m = Vec::with_capacity(16 + boxed.ciphertext.len());
    m.extend_from_slice(&boxed.nonce);
    m.extend_from_slice(&boxed.ciphertext);
    let tag = Cmac::new(&mac_key).mac(&m);
    if !ct_eq(&tag, &boxed.tag) {
        return Err(SealError::TagMismatch);
    }
    let mut plaintext = boxed.ciphertext.clone();
    ctr_xor(&enc_key, &boxed.nonce, &mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn secretbox_roundtrip_and_tamper() {
        let mut rng = StdRng::seed_from_u64(16);
        let key = [0x5Au8; 16];
        let boxed = seal_with_key(&key, b"renewed A_K payload", &mut rng);
        assert_eq!(open_with_key(&key, &boxed).unwrap(), b"renewed A_K payload");
        // Wrong key fails.
        assert_eq!(open_with_key(&[0u8; 16], &boxed), Err(SealError::TagMismatch));
        // Tampered ciphertext, nonce, and tag all fail.
        for f in [
            |b: &mut SecretBox| b.ciphertext[0] ^= 1,
            |b: &mut SecretBox| b.nonce[0] ^= 1,
            |b: &mut SecretBox| b.tag[0] ^= 1,
        ] {
            let mut t = boxed.clone();
            f(&mut t);
            assert_eq!(open_with_key(&key, &t), Err(SealError::TagMismatch));
        }
        // Nonces randomize ciphertexts.
        let again = seal_with_key(&key, b"renewed A_K payload", &mut rng);
        assert_ne!(again.ciphertext, boxed.ciphertext);
    }

    #[test]
    fn seal_open_roundtrip() {
        let mut rng = StdRng::seed_from_u64(10);
        let sk = SecretKey::generate(&mut rng);
        let msg = b"ResInfo || A_K delivery payload";
        let boxed = seal(&sk.public(), msg, &mut rng);
        assert_eq!(open(&sk, &boxed).unwrap(), msg);
    }

    #[test]
    fn wrong_recipient_fails() {
        let mut rng = StdRng::seed_from_u64(11);
        let sk = SecretKey::generate(&mut rng);
        let other = SecretKey::generate(&mut rng);
        let boxed = seal(&sk.public(), b"secret", &mut rng);
        assert_eq!(open(&other, &boxed), Err(SealError::TagMismatch));
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let mut rng = StdRng::seed_from_u64(12);
        let sk = SecretKey::generate(&mut rng);
        let mut boxed = seal(&sk.public(), b"secret payload", &mut rng);
        boxed.ciphertext[0] ^= 1;
        assert_eq!(open(&sk, &boxed), Err(SealError::TagMismatch));
    }

    #[test]
    fn tampered_nonce_fails() {
        let mut rng = StdRng::seed_from_u64(13);
        let sk = SecretKey::generate(&mut rng);
        let mut boxed = seal(&sk.public(), b"secret payload", &mut rng);
        boxed.nonce[3] ^= 0x80;
        assert_eq!(open(&sk, &boxed), Err(SealError::TagMismatch));
    }

    #[test]
    fn empty_plaintext_ok() {
        let mut rng = StdRng::seed_from_u64(14);
        let sk = SecretKey::generate(&mut rng);
        let boxed = seal(&sk.public(), b"", &mut rng);
        assert_eq!(open(&sk, &boxed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let mut rng = StdRng::seed_from_u64(15);
        let sk = SecretKey::generate(&mut rng);
        let a = seal(&sk.public(), b"same message", &mut rng);
        let b = seal(&sk.public(), b"same message", &mut rng);
        assert_ne!(a.ciphertext, b.ciphertext);
    }
}
