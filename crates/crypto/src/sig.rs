//! Schnorr signatures and Diffie-Hellman over a Schnorr group (demo-grade).
//!
//! Hummingbird's control plane assumes a PKI for ASes (RPKI or SCION CP-PKI,
//! §3.2): ASes prove possession of their certificate key during registration
//! with the asset contract, and end hosts provide an ephemeral public key so
//! the AS can encrypt the delivered reservation. No public-key crate is in
//! the approved offline dependency set, so this module implements a small
//! Schnorr group from scratch:
//!
//! * modulus `P` is a 127-bit safe prime (`P = 2Q + 1` with `Q` prime),
//! * the group is the order-`Q` subgroup of quadratic residues mod `P`,
//! * signatures are classic Schnorr (commitment, SHA-256 challenge,
//!   response), and key agreement is plain DH in the subgroup.
//!
//! **Security disclaimer:** a 127-bit discrete-log group offers on the order
//! of 2^40 security against index calculus — fine for exercising the exact
//! protocol flow in a reproduction, *not* for production. DESIGN.md records
//! this substitution. The API mirrors what an RPKI-backed implementation
//! would expose, so swapping in real crypto changes no caller.

use crate::sha256::Sha256;
use rand::Rng;

/// Safe prime `P = 2Q + 1`, 127 bits: P = 2^126 + 823.
/// Verified prime (both `P` and `Q`) by the tests in this module
/// (deterministic Miller-Rabin, exhaustive base set valid for < 2^128).
pub const P: u128 = 85070591730234615865843651857942053687; // 2^126 + 823
/// Subgroup order `Q = (P - 1) / 2`.
pub const Q: u128 = P / 2; // (P-1)/2, odd prime
/// Generator of the order-`Q` subgroup (a quadratic residue mod `P`).
pub const G: u128 = 4; // 2^2 is always a QR

/// 256-bit product helper: (lo, hi) limbs of a u128 multiplication.
#[inline]
fn mul_wide(a: u128, b: u128) -> (u128, u128) {
    // Split into 64-bit halves and recombine.
    let (a_lo, a_hi) = (a as u64 as u128, a >> 64);
    let (b_lo, b_hi) = (b as u64 as u128, b >> 64);
    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;
    let mid = lh.wrapping_add(hl);
    let mid_carry = if mid < lh { 1u128 << 64 } else { 0 };
    let lo = ll.wrapping_add(mid << 64);
    let lo_carry = if lo < ll { 1 } else { 0 };
    let hi = hh + (mid >> 64) + mid_carry + lo_carry;
    (lo, hi)
}

/// `2^128 mod P = P - 3292`, i.e. `2^128 ≡ -3292 (mod P)` — `P` is the
/// pseudo-Mersenne prime `2^126 + 823`, so `2^128 = 4P - 4·823`.
const P_FOLD: u128 = 3292;
/// `2^128 ≡ -3288 (mod Q)` — `Q = 2^125 + 411`, so `2^128 = 8Q - 8·411`.
const Q_FOLD: u128 = 3288;

/// `a - b mod m` for `a, b < m`.
#[inline]
fn submod(a: u128, b: u128, m: u128) -> u128 {
    if a >= b {
        a - b
    } else {
        m - (b - a)
    }
}

/// Reduces the 256-bit value `hi·2^128 + lo` modulo a pseudo-Mersenne
/// `m` with `2^128 ≡ -c (mod m)`: two constant-time folds replace the
/// bit-by-bit long division (`x ≡ lo - c·hi`, applied twice because
/// `c·hi` is itself up to ~140 bits). This is what makes million-object
/// control-plane runs affordable: every signature, DH, and sealed-box
/// operation bottoms out in this reduction.
#[inline]
fn fold_mod(lo: u128, hi: u128, m: u128, c: u128) -> u128 {
    // t = c·hi as a 256-bit value; its high limb is < c, so one more
    // fold with a native multiply finishes the reduction.
    let (t_lo, t_hi) = mul_wide(c, hi);
    let t = submod(t_lo % m, (c * t_hi) % m, m);
    submod(lo % m, t, m)
}

/// Computes `(a * b) mod m` for `m < 2^127` without overflow.
///
/// The group constants [`P`] and [`Q`] take a pseudo-Mersenne fast path
/// (see `fold_mod`); any other modulus falls back to generic binary
/// long division.
pub fn mulmod(a: u128, b: u128, m: u128) -> u128 {
    debug_assert!(m > 0 && m < (1u128 << 127));
    let (lo, hi) = mul_wide(a % m, b % m);
    if m == P {
        return fold_mod(lo, hi, P, P_FOLD);
    }
    if m == Q {
        return fold_mod(lo, hi, Q, Q_FOLD);
    }
    // Reduce the 256-bit value (hi, lo) mod m via binary long division.
    // hi < m (since both operands < m < 2^127, hi < 2^126), so we can fold
    // hi in bit by bit from the top.
    let mut rem = hi % m;
    for i in (0..128).rev() {
        rem = (rem << 1) % m;
        if (lo >> i) & 1 == 1 {
            rem = (rem + 1) % m;
        }
    }
    rem
}

/// Computes `base^exp mod m`.
pub fn powmod(mut base: u128, mut exp: u128, m: u128) -> u128 {
    let mut acc = 1u128 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// A secret (signing / DH) key: a scalar in `[1, Q)`.
#[derive(Clone)]
pub struct SecretKey(u128);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey {{ .. }}")
    }
}

/// A public key: group element `G^x mod P`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PublicKey(pub u128);

/// A Schnorr signature `(commitment e, response s)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Challenge scalar (hash of commitment and message).
    pub e: u128,
    /// Response scalar.
    pub s: u128,
}

impl SecretKey {
    /// Samples a fresh secret key.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let x: u128 = rng.gen::<u128>() % Q;
            if x != 0 {
                return SecretKey(x);
            }
        }
    }

    /// Deterministically derives a key from seed material (for tests and
    /// reproducible simulations).
    pub fn from_seed(seed: &[u8]) -> Self {
        let d = Sha256::digest(seed);
        let mut x = u128::from_be_bytes(d[..16].try_into().unwrap()) % Q;
        if x == 0 {
            x = 1;
        }
        SecretKey(x)
    }

    /// The corresponding public key.
    pub fn public(&self) -> PublicKey {
        PublicKey(powmod(G, self.0, P))
    }

    /// Signs `msg` (Schnorr, RFC 8235-style with SHA-256 challenge).
    pub fn sign<R: Rng + ?Sized>(&self, msg: &[u8], rng: &mut R) -> Signature {
        loop {
            let k = 1 + rng.gen::<u128>() % (Q - 1);
            let r = powmod(G, k, P);
            let e = challenge(r, self.public(), msg);
            if e == 0 {
                continue;
            }
            // s = k - x*e mod Q
            let xe = mulmod(self.0, e, Q);
            let s = (k + Q - xe) % Q;
            return Signature { e, s };
        }
    }

    /// Diffie-Hellman: shared secret with `peer`, hashed to 32 bytes.
    pub fn dh(&self, peer: &PublicKey) -> [u8; 32] {
        let shared = powmod(peer.0, self.0, P);
        let mut h = Sha256::new();
        h.update(b"hummingbird-dh");
        h.update(&shared.to_be_bytes());
        h.finalize()
    }
}

impl PublicKey {
    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        if sig.e == 0 || sig.e >= Q || sig.s >= Q {
            return false;
        }
        if self.0 <= 1 || self.0 >= P {
            return false;
        }
        // r' = G^s * y^e mod P; valid iff challenge(r', y, msg) == e.
        let r = mulmod(powmod(G, sig.s, P), powmod(self.0, sig.e, P), P);
        challenge(r, *self, msg) == sig.e
    }

    /// Serializes to 16 bytes (big-endian).
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Parses from 16 bytes; rejects out-of-range values.
    pub fn from_bytes(b: &[u8; 16]) -> Option<Self> {
        let v = u128::from_be_bytes(*b);
        if v <= 1 || v >= P {
            None
        } else {
            Some(PublicKey(v))
        }
    }
}

fn challenge(r: u128, pk: PublicKey, msg: &[u8]) -> u128 {
    let mut h = Sha256::new();
    h.update(b"hummingbird-schnorr");
    h.update(&r.to_be_bytes());
    h.update(&pk.0.to_be_bytes());
    h.update(msg);
    let d = h.finalize();
    u128::from_be_bytes(d[..16].try_into().unwrap()) % Q
}

/// Deterministic Miller-Rabin primality test, valid for all `n < 2^128`
/// with the chosen base set for the sizes used here.
pub fn is_prime(n: u128) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_parameters_are_sound() {
        assert!(is_prime(P), "P must be prime");
        assert!(is_prime(Q), "Q must be prime");
        assert_eq!(P, 2 * Q + 1, "P must be a safe prime");
        // G generates the order-Q subgroup: G^Q == 1, G != 1.
        assert_eq!(powmod(G, Q, P), 1);
        assert_ne!(G % P, 1);
    }

    #[test]
    fn mulmod_matches_small_cases() {
        for (a, b, m) in [(7u128, 9, 13), (0, 5, 7), (12, 12, 13)] {
            assert_eq!(mulmod(a, b, m), (a * b) % m);
        }
        // Large operands: (P-1)^2 mod P == 1.
        assert_eq!(mulmod(P - 1, P - 1, P), 1);
    }

    /// Reference reduction: the generic binary long division the
    /// pseudo-Mersenne fast path replaced for `m ∈ {P, Q}`.
    fn mulmod_reference(a: u128, b: u128, m: u128) -> u128 {
        let (lo, hi) = mul_wide(a % m, b % m);
        let mut rem = hi % m;
        for i in (0..128).rev() {
            rem = (rem << 1) % m;
            if (lo >> i) & 1 == 1 {
                rem = (rem + 1) % m;
            }
        }
        rem
    }

    #[test]
    fn pseudo_mersenne_fold_matches_long_division() {
        // The fold constants are exactly 2^128 mod {P, Q}, negated.
        assert_eq!(mulmod_reference(1 << 127, 2, P), P - P_FOLD);
        assert_eq!(mulmod_reference(1 << 127, 2, Q), Q - Q_FOLD);
        let mut rng = StdRng::seed_from_u64(0xF01D);
        for m in [P, Q] {
            for edge in [0u128, 1, 2, m - 2, m - 1] {
                assert_eq!(mulmod(edge, m - 1, m), mulmod_reference(edge, m - 1, m));
                assert_eq!(mulmod(edge, edge, m), mulmod_reference(edge, edge, m));
            }
            for _ in 0..1000 {
                let a: u128 = rng.gen::<u128>() % m;
                let b: u128 = rng.gen::<u128>() % m;
                assert_eq!(mulmod(a, b, m), mulmod_reference(a, b, m), "a={a} b={b} m={m}");
            }
        }
    }

    #[test]
    fn powmod_fermat() {
        // a^(P-1) == 1 mod P for a coprime with P.
        for a in [2u128, 3, 12345, 0xdead_beef] {
            assert_eq!(powmod(a, P - 1, P), 1);
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let sk = SecretKey::generate(&mut rng);
        let pk = sk.public();
        let sig = sk.sign(b"register AS 64500", &mut rng);
        assert!(pk.verify(b"register AS 64500", &sig));
        assert!(!pk.verify(b"register AS 64501", &sig));
    }

    #[test]
    fn signature_rejects_wrong_key() {
        let mut rng = StdRng::seed_from_u64(2);
        let sk1 = SecretKey::generate(&mut rng);
        let sk2 = SecretKey::generate(&mut rng);
        let sig = sk1.sign(b"msg", &mut rng);
        assert!(!sk2.public().verify(b"msg", &sig));
    }

    #[test]
    fn signature_malleability_guards() {
        let mut rng = StdRng::seed_from_u64(3);
        let sk = SecretKey::generate(&mut rng);
        let sig = sk.sign(b"m", &mut rng);
        let pk = sk.public();
        assert!(!pk.verify(b"m", &Signature { e: 0, s: sig.s }));
        assert!(!pk.verify(b"m", &Signature { e: sig.e, s: Q }));
        assert!(!PublicKey(0).verify(b"m", &sig));
        assert!(!PublicKey(P).verify(b"m", &sig));
    }

    #[test]
    fn dh_agreement() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = SecretKey::generate(&mut rng);
        let b = SecretKey::generate(&mut rng);
        assert_eq!(a.dh(&b.public()), b.dh(&a.public()));
        let c = SecretKey::generate(&mut rng);
        assert_ne!(a.dh(&b.public()), a.dh(&c.public()));
    }

    #[test]
    fn from_seed_is_deterministic() {
        let a = SecretKey::from_seed(b"as-64500");
        let b = SecretKey::from_seed(b"as-64500");
        assert_eq!(a.public(), b.public());
        assert_ne!(a.public(), SecretKey::from_seed(b"as-64501").public());
    }

    #[test]
    fn pubkey_serde_roundtrip() {
        let sk = SecretKey::from_seed(b"x");
        let pk = sk.public();
        assert_eq!(PublicKey::from_bytes(&pk.to_bytes()), Some(pk));
        assert_eq!(PublicKey::from_bytes(&[0u8; 16]), None);
    }
}
