//! AES-128 block cipher (FIPS-197), implemented from scratch.
//!
//! Hummingbird computes every reservation key and per-packet authentication
//! tag with `PRF = AES` (the paper uses AES-128 via AES-NI; see §7.1). This
//! is a portable software implementation used by [`crate::cmac`] and by the
//! single-block PRF in [`crate::flyover`].
//!
//! The implementation uses the byte-oriented S-box formulation with an
//! `xtime`-based MixColumns, avoiding large lookup tables. It is validated
//! against the FIPS-197 Appendix B/C vectors in the unit tests below.

/// The AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;
/// The AES-128 key size in bytes.
pub const KEY_SIZE: usize = 16;
/// Number of round keys for AES-128 (10 rounds + initial whitening).
const ROUND_KEYS: usize = 11;

/// Forward S-box (FIPS-197 Fig. 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 key, ready for encryption.
///
/// Expansion is done once; encrypting a block is then allocation-free.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUND_KEYS],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 {{ .. }}")
    }
}

impl Aes128 {
    /// Expands `key` into the 11 round keys (FIPS-197 §5.2).
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        let mut rk = [[0u8; 16]; ROUND_KEYS];
        rk[0] = *key;
        let mut prev = *key;
        for round in 1..ROUND_KEYS {
            let mut w = [prev[12], prev[13], prev[14], prev[15]];
            // RotWord + SubWord + Rcon
            w.rotate_left(1);
            for b in w.iter_mut() {
                *b = SBOX[*b as usize];
            }
            w[0] ^= RCON[round - 1];
            let mut cur = [0u8; 16];
            for i in 0..4 {
                cur[i] = prev[i] ^ w[i];
            }
            for i in 4..16 {
                cur[i] = prev[i] ^ cur[i - 4];
            }
            rk[round] = cur;
            prev = cur;
        }
        Aes128 { round_keys: rk }
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Encrypts a block, returning the ciphertext.
    #[inline]
    pub fn encrypt(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// Encrypts every block in `blocks` in place, sweeping the batch
    /// round-by-round instead of block-by-block.
    ///
    /// Round-major order keeps one round key hot across the whole batch
    /// and exposes independent per-block work to the pipeline — the
    /// software analogue of issuing one `AESENC` per in-flight block the
    /// way the paper's AES-NI datapath interleaves its per-burst key
    /// derivations. Bit-for-bit identical to calling
    /// [`encrypt_block`](Aes128::encrypt_block) on each element.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; BLOCK_SIZE]]) {
        for block in blocks.iter_mut() {
            add_round_key(block, &self.round_keys[0]);
        }
        for round in 1..10 {
            let rk = &self.round_keys[round];
            for block in blocks.iter_mut() {
                sub_bytes(block);
                shift_rows(block);
                mix_columns(block);
                add_round_key(block, rk);
            }
        }
        for block in blocks.iter_mut() {
            sub_bytes(block);
            shift_rows(block);
            add_round_key(block, &self.round_keys[10]);
        }
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: byte `state[4*c + r]` is row `r`, column `c`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (= right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = &mut state[4 * c..4 * c + 4];
        let a0 = col[0];
        let a1 = col[1];
        let a2 = col[2];
        let a3 = col[3];
        let all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = a0 ^ all ^ xtime(a0 ^ a1);
        col[1] = a1 ^ all ^ xtime(a1 ^ a2);
        col[2] = a2 ^ all ^ xtime(a2 ^ a3);
        col[3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, b) in out.iter_mut().enumerate() {
            *b = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS-197 Appendix B worked example.
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let ct = Aes128::new(&key).encrypt(&pt);
        assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 AES-128 example vector.
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let pt = hex16("00112233445566778899aabbccddeeff");
        let ct = Aes128::new(&key).encrypt(&pt);
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn nist_cavp_varkey_first() {
        // NIST CAVP ECBVarKey128 count 0: key = 0x80||0..0, pt = 0.
        let mut key = [0u8; 16];
        key[0] = 0x80;
        let pt = [0u8; 16];
        let ct = Aes128::new(&key).encrypt(&pt);
        assert_eq!(ct, hex16("0edd33d3c621e546455bd8ba1418bec8"));
    }

    #[test]
    fn nist_cavp_vartxt_first() {
        // NIST CAVP ECBVarTxt128 count 0: key = 0, pt = 0x80||0..0.
        let key = [0u8; 16];
        let mut pt = [0u8; 16];
        pt[0] = 0x80;
        let ct = Aes128::new(&key).encrypt(&pt);
        assert_eq!(ct, hex16("3ad78e726c1ec02b7ebfe92b23d9ec34"));
    }

    #[test]
    fn nist_cavp_gfsbox_vectors() {
        // NIST CAVP ECBGFSbox128: key = 0, varying plaintexts.
        let key = [0u8; 16];
        let cipher = Aes128::new(&key);
        let cases = [
            ("f34481ec3cc627bacd5dc3fb08f273e6", "0336763e966d92595a567cc9ce537f5e"),
            ("9798c4640bad75c7c3227db910174e72", "a9a1631bf4996954ebc093957b234589"),
            ("96ab5c2ff612d9dfaae8c31f30c42168", "ff4f8391a6a40ca5b25d23bedd44a597"),
            ("6a118a874519e64e9963798a503f1d35", "dc43be40be0e53712f7e2bf5ca707209"),
            ("cb9fceec81286ca3e989bd979b0cb284", "92beedab1895a94faa69b632e5cc47ce"),
            ("b26aeb1874e47ca8358ff22378f09144", "459264f4798f6a78bacb89c15ed3d601"),
            ("58c8e00b2631686d54eab84b91f0aca1", "08a4e2efec8a8e3312ca7460b9040bbf"),
        ];
        for (pt, ct) in cases {
            assert_eq!(cipher.encrypt(&hex16(pt)), hex16(ct), "GFSbox pt {pt}");
        }
    }

    #[test]
    fn nist_cavp_keysbox_vectors() {
        // NIST CAVP ECBKeySbox128: plaintext = 0, varying keys.
        let pt = [0u8; 16];
        let cases = [
            ("10a58869d74be5a374cf867cfb473859", "6d251e6944b051e04eaa6fb4dbf78465"),
            ("caea65cdbb75e9169ecd22ebe6e54675", "6e29201190152df4ee058139def610bb"),
            ("a2e2fa9baf7d20822ca9f0542f764a41", "c3b44b95d9d2f25670eee9a0de099fa3"),
            ("b6364ac4e1de1e285eaf144a2415f7a0", "5d9b05578fc944b3cf1ccf0e746cd581"),
            ("64cf9c7abc50b888af65f49d521944b2", "f7efc89d5dba578104016ce5ad659c05"),
        ];
        for (key, ct) in cases {
            assert_eq!(Aes128::new(&hex16(key)).encrypt(&pt), hex16(ct), "KeySbox {key}");
        }
    }

    #[test]
    fn encrypt_is_deterministic_and_key_sensitive() {
        let k1 = Aes128::new(&[1u8; 16]);
        let k2 = Aes128::new(&[2u8; 16]);
        let pt = [7u8; 16];
        assert_eq!(k1.encrypt(&pt), k1.encrypt(&pt));
        assert_ne!(k1.encrypt(&pt), k2.encrypt(&pt));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = Aes128::new(&[0x42u8; 16]);
        let s = format!("{k:?}");
        assert!(!s.contains("42"));
    }

    #[test]
    fn encrypt_blocks_matches_single_block_path() {
        let cipher = Aes128::new(&hex16("000102030405060708090a0b0c0d0e0f"));
        for n in [0usize, 1, 2, 7, 32, 33] {
            let mut batch: Vec<[u8; 16]> = (0..n).map(|i| [i as u8; 16]).collect();
            let expected: Vec<[u8; 16]> = batch.iter().map(|b| cipher.encrypt(b)).collect();
            cipher.encrypt_blocks(&mut batch);
            assert_eq!(batch, expected, "batch of {n} diverged");
        }
    }
}
