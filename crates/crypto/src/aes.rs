//! AES-128 block cipher (FIPS-197) with runtime-dispatched fast backends.
//!
//! Hummingbird computes every reservation key and per-packet authentication
//! tag with `PRF = AES` (the paper uses AES-128 via AES-NI; see §7.1), so
//! single-block AES throughput *is* the data-plane budget: the paper's
//! 308 ns border-router cost assumes one or two hardware AES invocations
//! per packet. This module provides one [`Aes128`] type over two backends:
//!
//! * **`soft`** — a portable word-oriented T-table implementation
//!   (4×256-entry tables built at compile time, `u32` round keys). This is
//!   the baseline on every architecture and is itself ~an order of
//!   magnitude faster than the byte-oriented S-box/`xtime` formulation it
//!   replaced (kept as [`bytewise`] for differential testing and as the
//!   benchmarks' "before" reference).
//! * **`ni`** — AES-NI via `std::arch::x86_64` intrinsics
//!   (`AESENC`/`AESENCLAST`/`AESKEYGENASSIST`), selected at runtime with
//!   `is_x86_feature_detected!("aes")` and falling back to `soft`
//!   otherwise.
//!
//! # Backend selection
//!
//! The backend is chosen **once per process** ([`active_backend`]) and
//! baked into each key at expansion time ([`Aes128::new`]), so the hot
//! path carries no per-block dispatch. Selection order:
//!
//! 1. `HUMMINGBIRD_AES_BACKEND=soft` forces the portable T-table path
//!    (used by CI to keep both backends green);
//! 2. `HUMMINGBIRD_AES_BACKEND=ni` requests AES-NI (silently falling back
//!    to `soft` where the CPU lacks it);
//! 3. otherwise AES-NI is used when detected, `soft` elsewhere.
//!
//! [`Aes128::with_backend`] pins a specific backend for tests and
//! benchmarks regardless of the process-wide choice.
//!
//! # Batch entry points
//!
//! [`Aes128::encrypt_blocks`] (one key, many blocks) and
//! [`Aes128::encrypt_blocks_per_key`] (one key *per* block — the shape of
//! a per-burst flyover-tag sweep, where every packet authenticates under
//! its own `A_i`) keep 4 (software) or 8 (AES-NI) independent blocks in
//! flight so the pipelined `AESENC` units / overlapping table loads are
//! actually saturated, mirroring how the paper's DPDK router interleaves
//! the per-burst key derivations. Both are bit-for-bit identical to the
//! single-block loop.
//!
//! All paths are validated against the FIPS-197 / NIST CAVP vectors and
//! cross-checked against each other by the property tests below.

use std::sync::OnceLock;

/// The AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;
/// The AES-128 key size in bytes.
pub const KEY_SIZE: usize = 16;
/// Number of round keys for AES-128 (10 rounds + initial whitening).
const ROUND_KEYS: usize = 11;
/// Round-key words (4 per round key).
const RK_WORDS: usize = 4 * ROUND_KEYS;

/// Forward S-box (FIPS-197 Fig. 7).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

// ---------------------------------------------------------------------------
// T-tables (built at compile time).
//
// `TE0[x]` holds the MixColumns-weighted S-box column `[2·S(x), S(x),
// S(x), 3·S(x)]` as a big-endian word; `TE1..TE3` are its byte
// rotations, one per state row, so a full round is 16 table loads and
// 16 XORs instead of per-byte SubBytes + ShiftRows + xtime MixColumns.
// ---------------------------------------------------------------------------

const fn build_te(rot: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut x = 0;
    while x < 256 {
        let s = SBOX[x];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        let w = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        t[x] = w.rotate_right(rot);
        x += 1;
    }
    t
}

static TE0: [u32; 256] = build_te(0);
static TE1: [u32; 256] = build_te(8);
static TE2: [u32; 256] = build_te(16);
static TE3: [u32; 256] = build_te(24);

/// Which implementation backs an expanded key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AesBackend {
    /// Portable word-oriented T-table implementation.
    Soft,
    /// AES-NI (`std::arch::x86_64` intrinsics), runtime-detected.
    Ni,
}

impl AesBackend {
    /// Stable display name (`soft` / `ni`), as used by
    /// `HUMMINGBIRD_AES_BACKEND` and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            AesBackend::Soft => "soft",
            AesBackend::Ni => "ni",
        }
    }
}

/// Whether AES-NI is available on this CPU.
pub fn ni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("aes")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The process-wide backend every [`Aes128::new`] key uses: the
/// `HUMMINGBIRD_AES_BACKEND` override (`soft` / `ni`) if set, otherwise
/// AES-NI when the CPU supports it, `soft` elsewhere. Computed once.
pub fn active_backend() -> AesBackend {
    static ACTIVE: OnceLock<AesBackend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let requested = std::env::var("HUMMINGBIRD_AES_BACKEND").ok();
        match requested.as_deref() {
            Some("soft") => AesBackend::Soft,
            // Unknown values fall through to auto-detection rather than
            // failing: the override is a test/CI knob, not configuration.
            Some("ni") | Some(_) | None => {
                if ni_available() {
                    AesBackend::Ni
                } else {
                    AesBackend::Soft
                }
            }
        }
    })
}

/// Expanded round keys, in the representation of the owning backend.
#[derive(Clone)]
enum Keys {
    /// 44 big-endian words (11 round keys × 4 columns).
    Soft([u32; RK_WORDS]),
    /// 11 `__m128i` round keys. Only ever constructed after
    /// `ni_available()` returned true — the soundness condition for
    /// calling the `ni` kernels.
    #[cfg(target_arch = "x86_64")]
    Ni(ni::Schedule),
}

/// An expanded AES-128 key, ready for encryption.
///
/// Expansion is done once (and the backend fixed at that point);
/// encrypting a block is then allocation-free and dispatch-free.
#[derive(Clone)]
pub struct Aes128 {
    keys: Keys,
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 {{ .. }}")
    }
}

impl Aes128 {
    /// Expands `key` into the round keys (FIPS-197 §5.2) using the
    /// process-wide [`active_backend`].
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        Self::with_backend(key, active_backend())
    }

    /// Expands `key` for a specific backend, falling back to
    /// [`AesBackend::Soft`] when `AesBackend::Ni` is requested on a CPU
    /// without AES-NI. Intended for tests and benchmarks; production
    /// callers use [`Aes128::new`].
    #[allow(unsafe_code)] // calls into `ni` after runtime detection
    pub fn with_backend(key: &[u8; KEY_SIZE], backend: AesBackend) -> Self {
        match backend {
            AesBackend::Soft => Aes128 { keys: Keys::Soft(expand_soft(key)) },
            AesBackend::Ni => {
                #[cfg(target_arch = "x86_64")]
                if ni_available() {
                    // SAFETY: AES-NI support was just runtime-detected.
                    return Aes128 { keys: Keys::Ni(unsafe { ni::expand(key) }) };
                }
                Aes128 { keys: Keys::Soft(expand_soft(key)) }
            }
        }
    }

    /// The backend this key was expanded for.
    pub fn backend(&self) -> AesBackend {
        match &self.keys {
            Keys::Soft(_) => AesBackend::Soft,
            #[cfg(target_arch = "x86_64")]
            Keys::Ni(_) => AesBackend::Ni,
        }
    }

    /// Encrypts a single 16-byte block in place.
    #[allow(unsafe_code)] // `Keys::Ni` implies runtime-detected AES-NI
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        match &self.keys {
            Keys::Soft(rk) => encrypt1_soft(rk, block),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Keys::Ni` implies AES-NI was detected at expansion.
            Keys::Ni(s) => unsafe { ni::encrypt_block(s, block) },
        }
    }

    /// Encrypts a block, returning the ciphertext.
    #[inline]
    pub fn encrypt(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// Encrypts every block in `blocks` in place, keeping several blocks
    /// in flight (8 under AES-NI, 4 in software).
    ///
    /// A single AES block is a serial chain of 10 dependent rounds;
    /// interleaving independent blocks fills the pipeline — pipelined
    /// `AESENC` on the NI path (latency ≫ throughput on every x86 core),
    /// overlapping T-table loads on the software path. Bit-for-bit
    /// identical to calling [`encrypt_block`](Aes128::encrypt_block) on
    /// each element.
    #[allow(unsafe_code)] // `Keys::Ni` implies runtime-detected AES-NI
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; BLOCK_SIZE]]) {
        match &self.keys {
            Keys::Soft(rk) => {
                let mut chunks = blocks.chunks_exact_mut(SOFT_LANES);
                for chunk in &mut chunks {
                    encrypt4_soft([rk, rk, rk, rk], chunk);
                }
                for block in chunks.into_remainder() {
                    encrypt1_soft(rk, block);
                }
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Keys::Ni` implies AES-NI was detected at expansion.
            Keys::Ni(s) => unsafe { ni::encrypt_blocks(s, blocks) },
        }
    }

    /// Encrypts `blocks[i]` under `ciphers[i]` for every `i`, with the
    /// same interleaving as [`encrypt_blocks`](Aes128::encrypt_blocks).
    ///
    /// This is the shape of a per-burst tag sweep: every packet of a
    /// burst authenticates under its *own* reservation key `A_i`, but the
    /// blocks are still independent, so they pipeline just as well as a
    /// single-key batch. Backend-homogeneous groups (the only case that
    /// occurs in practice — the backend is process-wide) take the wide
    /// kernels; mixed groups fall back to per-block encryption.
    ///
    /// # Panics
    ///
    /// If `ciphers.len() != blocks.len()`.
    pub fn encrypt_blocks_per_key(ciphers: &[&Aes128], blocks: &mut [[u8; BLOCK_SIZE]]) {
        assert_eq!(ciphers.len(), blocks.len(), "one cipher per block");
        Self::encrypt_blocks_with(|i| ciphers[i], blocks);
    }

    /// [`encrypt_blocks_per_key`](Aes128::encrypt_blocks_per_key) with
    /// the per-block cipher resolved through `cipher_at(i)` instead of a
    /// materialized slice — hot batch paths that already hold their keys
    /// in an index structure avoid building (and allocating) a
    /// reference vector per burst. `cipher_at` must be a pure index
    /// lookup: it may be called more than once per index (the interleave
    /// kernels probe a group's backends before committing to a wide
    /// pass), in ascending order within each group.
    #[allow(unsafe_code)] // `Keys::Ni` implies runtime-detected AES-NI
    pub fn encrypt_blocks_with<'a>(
        cipher_at: impl Fn(usize) -> &'a Aes128,
        blocks: &mut [[u8; BLOCK_SIZE]],
    ) {
        let n = blocks.len();
        let mut i = 0;
        while i < n {
            #[cfg(target_arch = "x86_64")]
            if i + ni::LANES <= n {
                if let Some(group) = ni_group(i, &cipher_at) {
                    let chunk: &mut [[u8; BLOCK_SIZE]; ni::LANES] =
                        (&mut blocks[i..i + ni::LANES]).try_into().expect("chunk is LANES long");
                    // SAFETY: the group only forms from `Keys::Ni`
                    // schedules, which imply runtime-detected AES-NI.
                    unsafe { ni::encrypt_lanes(&group, chunk) };
                    i += ni::LANES;
                    continue;
                }
            }
            if i + SOFT_LANES <= n {
                if let Some(group) = soft_group(i, &cipher_at) {
                    encrypt4_soft(group, &mut blocks[i..i + SOFT_LANES]);
                    i += SOFT_LANES;
                    continue;
                }
            }
            cipher_at(i).encrypt_block(&mut blocks[i]);
            i += 1;
        }
    }
}

/// The software round keys of blocks `base..base + SOFT_LANES`, if all
/// four are soft-backed.
fn soft_group<'a>(
    base: usize,
    cipher_at: &impl Fn(usize) -> &'a Aes128,
) -> Option<[&'a [u32; RK_WORDS]; SOFT_LANES]> {
    let rk = |i: usize| match &cipher_at(base + i).keys {
        Keys::Soft(rk) => Some(rk),
        #[cfg(target_arch = "x86_64")]
        Keys::Ni(_) => None,
    };
    Some([rk(0)?, rk(1)?, rk(2)?, rk(3)?])
}

/// The NI schedules of blocks `base..base + ni::LANES`, if all are
/// NI-backed.
#[cfg(target_arch = "x86_64")]
fn ni_group<'a>(
    base: usize,
    cipher_at: &impl Fn(usize) -> &'a Aes128,
) -> Option<[&'a ni::Schedule; ni::LANES]> {
    let mut out: [Option<&ni::Schedule>; ni::LANES] = [None; ni::LANES];
    for (l, slot) in out.iter_mut().enumerate() {
        match &cipher_at(base + l).keys {
            Keys::Ni(s) => *slot = Some(s),
            Keys::Soft(_) => return None,
        }
    }
    Some(out.map(|s| s.expect("filled above")))
}

// ---------------------------------------------------------------------------
// Software (T-table) backend.
// ---------------------------------------------------------------------------

/// Blocks kept in flight by the software batch kernels.
const SOFT_LANES: usize = 4;

fn sub_word(w: u32) -> u32 {
    (u32::from(SBOX[(w >> 24) as usize]) << 24)
        | (u32::from(SBOX[((w >> 16) & 0xff) as usize]) << 16)
        | (u32::from(SBOX[((w >> 8) & 0xff) as usize]) << 8)
        | u32::from(SBOX[(w & 0xff) as usize])
}

/// FIPS-197 §5.2 key expansion into 44 big-endian words.
fn expand_soft(key: &[u8; KEY_SIZE]) -> [u32; RK_WORDS] {
    let mut w = [0u32; RK_WORDS];
    for i in 0..4 {
        w[i] = u32::from_be_bytes(key[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
    }
    for i in 4..RK_WORDS {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t = sub_word(t.rotate_left(8)) ^ (u32::from(RCON[i / 4 - 1]) << 24);
        }
        w[i] = w[i - 4] ^ t;
    }
    w
}

#[inline]
fn load_state(block: &[u8; BLOCK_SIZE]) -> [u32; 4] {
    let w =
        |i: usize| u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
    [w(0), w(1), w(2), w(3)]
}

#[inline]
fn store_state(block: &mut [u8; BLOCK_SIZE], s: [u32; 4]) {
    for (chunk, w) in block.chunks_exact_mut(4).zip(s) {
        chunk.copy_from_slice(&w.to_be_bytes());
    }
}

/// One middle round: 16 table loads + round key. The column rotation
/// (`s[c]`, `s[c+1]`, …) *is* ShiftRows; the table weights *are*
/// MixColumns. `R` is the (compile-time) round index so the round-key
/// loads are constant offsets — no slices, no bounds checks on the
/// latency-critical path.
#[inline(always)]
fn ttable_round<const R: usize>(s: [u32; 4], rk: &[u32; RK_WORDS]) -> [u32; 4] {
    let col = |a: u32, b: u32, c: u32, d: u32, k: u32| {
        TE0[(a >> 24) as usize]
            ^ TE1[((b >> 16) & 0xff) as usize]
            ^ TE2[((c >> 8) & 0xff) as usize]
            ^ TE3[(d & 0xff) as usize]
            ^ k
    };
    [
        col(s[0], s[1], s[2], s[3], rk[4 * R]),
        col(s[1], s[2], s[3], s[0], rk[4 * R + 1]),
        col(s[2], s[3], s[0], s[1], rk[4 * R + 2]),
        col(s[3], s[0], s[1], s[2], rk[4 * R + 3]),
    ]
}

/// The final round (SubBytes + ShiftRows + AddRoundKey, no MixColumns).
#[inline(always)]
fn last_round(s: [u32; 4], rk: &[u32; RK_WORDS]) -> [u32; 4] {
    let col = |a: u32, b: u32, c: u32, d: u32, k: u32| {
        ((u32::from(SBOX[(a >> 24) as usize]) << 24)
            | (u32::from(SBOX[((b >> 16) & 0xff) as usize]) << 16)
            | (u32::from(SBOX[((c >> 8) & 0xff) as usize]) << 8)
            | u32::from(SBOX[(d & 0xff) as usize]))
            ^ k
    };
    [
        col(s[0], s[1], s[2], s[3], rk[40]),
        col(s[1], s[2], s[3], s[0], rk[41]),
        col(s[2], s[3], s[0], s[1], rk[42]),
        col(s[3], s[0], s[1], s[2], rk[43]),
    ]
}

/// All ten rounds, fully unrolled (constant round-key offsets).
#[inline(always)]
fn rounds_soft(rk: &[u32; RK_WORDS], mut s: [u32; 4]) -> [u32; 4] {
    s[0] ^= rk[0];
    s[1] ^= rk[1];
    s[2] ^= rk[2];
    s[3] ^= rk[3];
    s = ttable_round::<1>(s, rk);
    s = ttable_round::<2>(s, rk);
    s = ttable_round::<3>(s, rk);
    s = ttable_round::<4>(s, rk);
    s = ttable_round::<5>(s, rk);
    s = ttable_round::<6>(s, rk);
    s = ttable_round::<7>(s, rk);
    s = ttable_round::<8>(s, rk);
    s = ttable_round::<9>(s, rk);
    last_round(s, rk)
}

fn encrypt1_soft(rk: &[u32; RK_WORDS], block: &mut [u8; BLOCK_SIZE]) {
    store_state(block, rounds_soft(rk, load_state(block)));
}

/// Four blocks through the rounds together (round-major), each under its
/// own round keys; the fixed-size inner loops unroll, exposing 4
/// independent dependency chains to the out-of-order core.
fn encrypt4_soft(rks: [&[u32; RK_WORDS]; SOFT_LANES], blocks: &mut [[u8; BLOCK_SIZE]]) {
    debug_assert_eq!(blocks.len(), SOFT_LANES);
    let mut st = [[0u32; 4]; SOFT_LANES];
    for b in 0..SOFT_LANES {
        st[b] = load_state(&blocks[b]);
        for i in 0..4 {
            st[b][i] ^= rks[b][i];
        }
    }
    macro_rules! round_all {
        ($r:literal) => {
            for b in 0..SOFT_LANES {
                st[b] = ttable_round::<$r>(st[b], rks[b]);
            }
        };
    }
    round_all!(1);
    round_all!(2);
    round_all!(3);
    round_all!(4);
    round_all!(5);
    round_all!(6);
    round_all!(7);
    round_all!(8);
    round_all!(9);
    for b in 0..SOFT_LANES {
        st[b] = last_round(st[b], rks[b]);
        store_state(&mut blocks[b], st[b]);
    }
}

// ---------------------------------------------------------------------------
// AES-NI backend.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod ni {
    //! AES-NI kernels. Every function carries
    //! `#[target_feature(enable = "aes")]`; the soundness condition for
    //! calling them is that `super::ni_available()` returned true, which
    //! is established once at key-expansion time (`Keys::Ni` values exist
    //! only on AES-capable CPUs).
    #![deny(unsafe_op_in_unsafe_fn)]

    use super::{BLOCK_SIZE, KEY_SIZE, ROUND_KEYS};
    use std::arch::x86_64::{
        __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_aeskeygenassist_si128,
        _mm_loadu_si128, _mm_setzero_si128, _mm_shuffle_epi32, _mm_slli_si128, _mm_storeu_si128,
        _mm_xor_si128,
    };

    /// Blocks kept in flight by the batch kernels: `AESENC` latency is
    /// ~3-7 cycles at 1-2/cycle throughput on post-2015 x86, so 8
    /// independent chains saturate the unit with headroom.
    pub(super) const LANES: usize = 8;

    /// An expanded AES-NI key schedule.
    #[derive(Clone, Copy)]
    pub(super) struct Schedule([__m128i; ROUND_KEYS]);

    #[inline]
    fn load(block: &[u8; BLOCK_SIZE]) -> __m128i {
        // SAFETY: `block` is 16 readable bytes; `loadu` is unaligned.
        unsafe { _mm_loadu_si128(block.as_ptr().cast()) }
    }

    #[inline]
    fn store(block: &mut [u8; BLOCK_SIZE], v: __m128i) {
        // SAFETY: `block` is 16 writable bytes; `storeu` is unaligned.
        unsafe { _mm_storeu_si128(block.as_mut_ptr().cast(), v) }
    }

    /// FIPS-197 §5.2 via `AESKEYGENASSIST` (the immediate carries the
    /// round constant, hence the macro: intrinsic immediates must be
    /// literals).
    #[target_feature(enable = "aes")]
    pub(super) fn expand(key: &[u8; KEY_SIZE]) -> Schedule {
        let mut rk = [_mm_setzero_si128(); ROUND_KEYS];
        rk[0] = load(key);
        macro_rules! round {
            ($i:literal, $rcon:literal) => {
                let t = _mm_shuffle_epi32(_mm_aeskeygenassist_si128(rk[$i - 1], $rcon), 0xff);
                let mut k = rk[$i - 1];
                k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
                k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
                k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
                rk[$i] = _mm_xor_si128(k, t);
            };
        }
        round!(1, 0x01);
        round!(2, 0x02);
        round!(3, 0x04);
        round!(4, 0x08);
        round!(5, 0x10);
        round!(6, 0x20);
        round!(7, 0x40);
        round!(8, 0x80);
        round!(9, 0x1b);
        round!(10, 0x36);
        Schedule(rk)
    }

    #[target_feature(enable = "aes")]
    pub(super) fn encrypt_block(s: &Schedule, block: &mut [u8; BLOCK_SIZE]) {
        let mut b = _mm_xor_si128(load(block), s.0[0]);
        for r in 1..10 {
            b = _mm_aesenc_si128(b, s.0[r]);
        }
        store(block, _mm_aesenclast_si128(b, s.0[10]));
    }

    /// Single-key batch: [`LANES`] blocks in flight per group.
    #[target_feature(enable = "aes")]
    pub(super) fn encrypt_blocks(s: &Schedule, blocks: &mut [[u8; BLOCK_SIZE]]) {
        let mut chunks = blocks.chunks_exact_mut(LANES);
        for chunk in &mut chunks {
            let mut v = [_mm_setzero_si128(); LANES];
            for (lane, block) in v.iter_mut().zip(chunk.iter()) {
                *lane = _mm_xor_si128(load(block), s.0[0]);
            }
            for r in 1..10 {
                let k = s.0[r];
                for lane in v.iter_mut() {
                    *lane = _mm_aesenc_si128(*lane, k);
                }
            }
            for (lane, block) in v.iter_mut().zip(chunk.iter_mut()) {
                store(block, _mm_aesenclast_si128(*lane, s.0[10]));
            }
        }
        for block in chunks.into_remainder() {
            encrypt_block(s, block);
        }
    }

    /// Multi-key batch: `blocks[i]` under `scheds[i]` — the per-burst
    /// flyover-tag shape (one reservation key per packet).
    #[target_feature(enable = "aes")]
    pub(super) fn encrypt_lanes(
        scheds: &[&Schedule; LANES],
        blocks: &mut [[u8; BLOCK_SIZE]; LANES],
    ) {
        let mut v = [_mm_setzero_si128(); LANES];
        for l in 0..LANES {
            v[l] = _mm_xor_si128(load(&blocks[l]), scheds[l].0[0]);
        }
        for r in 1..10 {
            for l in 0..LANES {
                v[l] = _mm_aesenc_si128(v[l], scheds[l].0[r]);
            }
        }
        for l in 0..LANES {
            store(&mut blocks[l], _mm_aesenclast_si128(v[l], scheds[l].0[10]));
        }
    }
}

pub mod bytewise {
    //! The original byte-oriented AES-128 (S-box + `xtime` MixColumns,
    //! no lookup tables beyond the S-box), retained as a differential
    //! oracle for the fast backends and as the benchmarks' "before"
    //! reference — the `hot_path` criterion group measures the T-table
    //! and AES-NI speedups against this implementation.

    use super::{xtime, BLOCK_SIZE, KEY_SIZE, RCON, ROUND_KEYS, SBOX};

    /// An expanded key for the byte-oriented reference implementation.
    #[derive(Clone)]
    pub struct ByteAes128 {
        round_keys: [[u8; 16]; ROUND_KEYS],
    }

    impl ByteAes128 {
        /// Expands `key` (FIPS-197 §5.2, byte formulation).
        pub fn new(key: &[u8; KEY_SIZE]) -> Self {
            let mut rk = [[0u8; 16]; ROUND_KEYS];
            rk[0] = *key;
            let mut prev = *key;
            for round in 1..ROUND_KEYS {
                let mut w = [prev[12], prev[13], prev[14], prev[15]];
                // RotWord + SubWord + Rcon
                w.rotate_left(1);
                for b in w.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                w[0] ^= RCON[round - 1];
                let mut cur = [0u8; 16];
                for i in 0..4 {
                    cur[i] = prev[i] ^ w[i];
                }
                for i in 4..16 {
                    cur[i] = prev[i] ^ cur[i - 4];
                }
                rk[round] = cur;
                prev = cur;
            }
            ByteAes128 { round_keys: rk }
        }

        /// Encrypts a single 16-byte block in place.
        pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
            add_round_key(block, &self.round_keys[0]);
            for round in 1..10 {
                sub_bytes(block);
                shift_rows(block);
                mix_columns(block);
                add_round_key(block, &self.round_keys[round]);
            }
            sub_bytes(block);
            shift_rows(block);
            add_round_key(block, &self.round_keys[10]);
        }

        /// Encrypts a block, returning the ciphertext.
        pub fn encrypt(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
            let mut out = *block;
            self.encrypt_block(&mut out);
            out
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    /// State is column-major: byte `state[4*c + r]` is row `r`, column `c`.
    fn shift_rows(state: &mut [u8; 16]) {
        // Row 1: shift left by 1.
        let t = state[1];
        state[1] = state[5];
        state[5] = state[9];
        state[9] = state[13];
        state[13] = t;
        // Row 2: shift left by 2.
        state.swap(2, 10);
        state.swap(6, 14);
        // Row 3: shift left by 3 (= right by 1).
        let t = state[15];
        state[15] = state[11];
        state[11] = state[7];
        state[7] = state[3];
        state[3] = t;
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let a0 = col[0];
            let a1 = col[1];
            let a2 = col[2];
            let a3 = col[3];
            let all = a0 ^ a1 ^ a2 ^ a3;
            col[0] = a0 ^ all ^ xtime(a0 ^ a1);
            col[1] = a1 ^ all ^ xtime(a1 ^ a2);
            col[2] = a2 ^ all ^ xtime(a2 ^ a3);
            col[3] = a3 ^ all ^ xtime(a3 ^ a0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::bytewise::ByteAes128;
    use super::*;
    use proptest::prelude::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, b) in out.iter_mut().enumerate() {
            *b = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    /// Every backend available on this machine, for exhaustive vector
    /// coverage (`Ni` silently degrades to `Soft` off-x86, where the two
    /// entries simply test the same path twice).
    fn backends() -> Vec<AesBackend> {
        vec![AesBackend::Soft, AesBackend::Ni]
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS-197 Appendix B worked example.
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        for backend in backends() {
            let ct = Aes128::with_backend(&key, backend).encrypt(&pt);
            assert_eq!(ct, hex16("3925841d02dc09fbdc118597196a0b32"), "{backend:?}");
        }
    }

    #[test]
    fn fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 AES-128 example vector.
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let pt = hex16("00112233445566778899aabbccddeeff");
        for backend in backends() {
            let ct = Aes128::with_backend(&key, backend).encrypt(&pt);
            assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"), "{backend:?}");
        }
    }

    #[test]
    fn nist_cavp_varkey_first() {
        // NIST CAVP ECBVarKey128 count 0: key = 0x80||0..0, pt = 0.
        let mut key = [0u8; 16];
        key[0] = 0x80;
        let pt = [0u8; 16];
        for backend in backends() {
            let ct = Aes128::with_backend(&key, backend).encrypt(&pt);
            assert_eq!(ct, hex16("0edd33d3c621e546455bd8ba1418bec8"), "{backend:?}");
        }
    }

    #[test]
    fn nist_cavp_vartxt_first() {
        // NIST CAVP ECBVarTxt128 count 0: key = 0, pt = 0x80||0..0.
        let key = [0u8; 16];
        let mut pt = [0u8; 16];
        pt[0] = 0x80;
        for backend in backends() {
            let ct = Aes128::with_backend(&key, backend).encrypt(&pt);
            assert_eq!(ct, hex16("3ad78e726c1ec02b7ebfe92b23d9ec34"), "{backend:?}");
        }
    }

    #[test]
    fn nist_cavp_gfsbox_vectors() {
        // NIST CAVP ECBGFSbox128: key = 0, varying plaintexts.
        let key = [0u8; 16];
        let cases = [
            ("f34481ec3cc627bacd5dc3fb08f273e6", "0336763e966d92595a567cc9ce537f5e"),
            ("9798c4640bad75c7c3227db910174e72", "a9a1631bf4996954ebc093957b234589"),
            ("96ab5c2ff612d9dfaae8c31f30c42168", "ff4f8391a6a40ca5b25d23bedd44a597"),
            ("6a118a874519e64e9963798a503f1d35", "dc43be40be0e53712f7e2bf5ca707209"),
            ("cb9fceec81286ca3e989bd979b0cb284", "92beedab1895a94faa69b632e5cc47ce"),
            ("b26aeb1874e47ca8358ff22378f09144", "459264f4798f6a78bacb89c15ed3d601"),
            ("58c8e00b2631686d54eab84b91f0aca1", "08a4e2efec8a8e3312ca7460b9040bbf"),
        ];
        for backend in backends() {
            let cipher = Aes128::with_backend(&key, backend);
            for (pt, ct) in cases {
                assert_eq!(cipher.encrypt(&hex16(pt)), hex16(ct), "{backend:?} GFSbox pt {pt}");
            }
        }
    }

    #[test]
    fn nist_cavp_keysbox_vectors() {
        // NIST CAVP ECBKeySbox128: plaintext = 0, varying keys.
        let pt = [0u8; 16];
        let cases = [
            ("10a58869d74be5a374cf867cfb473859", "6d251e6944b051e04eaa6fb4dbf78465"),
            ("caea65cdbb75e9169ecd22ebe6e54675", "6e29201190152df4ee058139def610bb"),
            ("a2e2fa9baf7d20822ca9f0542f764a41", "c3b44b95d9d2f25670eee9a0de099fa3"),
            ("b6364ac4e1de1e285eaf144a2415f7a0", "5d9b05578fc944b3cf1ccf0e746cd581"),
            ("64cf9c7abc50b888af65f49d521944b2", "f7efc89d5dba578104016ce5ad659c05"),
        ];
        for backend in backends() {
            for (key, ct) in cases {
                assert_eq!(
                    Aes128::with_backend(&hex16(key), backend).encrypt(&pt),
                    hex16(ct),
                    "{backend:?} KeySbox {key}"
                );
            }
        }
    }

    #[test]
    fn encrypt_is_deterministic_and_key_sensitive() {
        let k1 = Aes128::new(&[1u8; 16]);
        let k2 = Aes128::new(&[2u8; 16]);
        let pt = [7u8; 16];
        assert_eq!(k1.encrypt(&pt), k1.encrypt(&pt));
        assert_ne!(k1.encrypt(&pt), k2.encrypt(&pt));
    }

    #[test]
    fn debug_does_not_leak_key() {
        let k = Aes128::new(&[0x42u8; 16]);
        let s = format!("{k:?}");
        assert!(!s.contains("42"));
    }

    #[test]
    fn backend_selection_reports_and_degrades() {
        let key = [3u8; 16];
        assert_eq!(Aes128::with_backend(&key, AesBackend::Soft).backend(), AesBackend::Soft);
        let ni = Aes128::with_backend(&key, AesBackend::Ni);
        if ni_available() {
            assert_eq!(ni.backend(), AesBackend::Ni);
        } else {
            assert_eq!(ni.backend(), AesBackend::Soft, "Ni degrades to Soft off-hardware");
        }
        // The active backend is one of the two and stable.
        assert_eq!(active_backend(), active_backend());
        assert_eq!(AesBackend::Soft.name(), "soft");
        assert_eq!(AesBackend::Ni.name(), "ni");
    }

    #[test]
    fn encrypt_blocks_matches_single_block_path_on_every_backend() {
        // Covers remainder handling around both lane widths (4 and 8).
        for backend in backends() {
            let cipher = Aes128::with_backend(&hex16("000102030405060708090a0b0c0d0e0f"), backend);
            for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 32, 33] {
                let mut batch: Vec<[u8; 16]> = (0..n).map(|i| [i as u8; 16]).collect();
                let expected: Vec<[u8; 16]> = batch.iter().map(|b| cipher.encrypt(b)).collect();
                cipher.encrypt_blocks(&mut batch);
                assert_eq!(batch, expected, "{backend:?}: batch of {n} diverged");
            }
        }
    }

    #[test]
    fn encrypt_blocks_per_key_matches_per_block_loop() {
        for backend in backends() {
            let ciphers: Vec<Aes128> =
                (0..23).map(|i| Aes128::with_backend(&[i as u8 + 1; 16], backend)).collect();
            for n in [0usize, 1, 4, 7, 8, 9, 16, 23] {
                let refs: Vec<&Aes128> = ciphers[..n].iter().collect();
                let mut batch: Vec<[u8; 16]> = (0..n).map(|i| [0xA0 ^ i as u8; 16]).collect();
                let expected: Vec<[u8; 16]> =
                    batch.iter().zip(&refs).map(|(b, c)| c.encrypt(b)).collect();
                Aes128::encrypt_blocks_per_key(&refs, &mut batch);
                assert_eq!(batch, expected, "{backend:?}: per-key batch of {n} diverged");
            }
        }
    }

    #[test]
    fn encrypt_blocks_per_key_handles_mixed_backends() {
        // Mixed groups only arise via explicit `with_backend`, but they
        // must still be correct (per-block fallback).
        let a = Aes128::with_backend(&[1; 16], AesBackend::Soft);
        let b = Aes128::with_backend(&[2; 16], AesBackend::Ni);
        let refs: Vec<&Aes128> = (0..12).map(|i| if i % 2 == 0 { &a } else { &b }).collect();
        let mut batch: Vec<[u8; 16]> = (0..12).map(|i| [i as u8; 16]).collect();
        let expected: Vec<[u8; 16]> =
            batch.iter().zip(&refs).map(|(blk, c)| c.encrypt(blk)).collect();
        Aes128::encrypt_blocks_per_key(&refs, &mut batch);
        assert_eq!(batch, expected);
    }

    #[test]
    #[should_panic(expected = "one cipher per block")]
    fn encrypt_blocks_per_key_checks_lengths() {
        let c = Aes128::new(&[1; 16]);
        Aes128::encrypt_blocks_per_key(&[&c], &mut []);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Cross-backend equivalence: for random keys and blocks, the
        /// T-table path, the AES-NI path (where available) and the
        /// byte-oriented reference all agree — single-block and batch.
        #[test]
        fn backends_agree_on_random_inputs(
            key in proptest::collection::vec(any::<u8>(), 16..17),
            blocks in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 16..17), 1..20),
        ) {
            let key: [u8; 16] = key.as_slice().try_into().unwrap();
            let blocks: Vec<[u8; 16]> =
                blocks.iter().map(|b| b.as_slice().try_into().unwrap()).collect();
            let reference = ByteAes128::new(&key);
            let soft = Aes128::with_backend(&key, AesBackend::Soft);
            let ni = Aes128::with_backend(&key, AesBackend::Ni);
            let expected: Vec<[u8; 16]> = blocks.iter().map(|b| reference.encrypt(b)).collect();
            for (label, cipher) in [("soft", &soft), ("ni", &ni)] {
                let singles: Vec<[u8; 16]> = blocks.iter().map(|b| cipher.encrypt(b)).collect();
                prop_assert_eq!(&singles, &expected, "{} single-block diverged", label);
                let mut batch = blocks.clone();
                cipher.encrypt_blocks(&mut batch);
                prop_assert_eq!(&batch, &expected, "{} batch diverged", label);
            }
        }
    }
}
