//! # hummingbird-crypto
//!
//! From-scratch cryptographic substrate for the Hummingbird reproduction.
//! No external crypto crates are available in the offline build environment,
//! so every primitive the paper relies on is implemented and tested against
//! official vectors here:
//!
//! * [`aes`] — AES-128 (FIPS-197), the paper's PRF instantiation (§7.1).
//! * [`cmac`] — AES-CMAC (RFC 4493), the variable-length PRF/MAC.
//! * [`sha256`] / [`hmac`] — SHA-256 and HMAC-SHA-256 (ledger digests, KDF).
//! * [`sig`] — Schnorr signatures + DH over a 127-bit Schnorr group
//!   (demo-grade PKI substitute; see DESIGN.md).
//! * [`sealed`] — ECIES-style sealed boxes for reservation delivery (§4.2).
//! * [`flyover`] — the Hummingbird derivations: `A_K` (Eq. 2), the 6-byte
//!   per-packet flyover MAC (Eq. 3/7a) and the aggregate MAC (Eq. 6).

// `deny` rather than `forbid`: the one sanctioned exception is the
// AES-NI backend in [`aes`], whose intrinsics module opts back in with a
// scoped `#[allow(unsafe_code)]` and `deny(unsafe_op_in_unsafe_fn)`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cmac;
pub mod flyover;
pub mod hmac;
pub mod sealed;
pub mod sha256;
pub mod sig;

pub use aes::{active_backend, ni_available, AesBackend};
pub use flyover::{
    aggregate_mac, flyover_tags_batch, flyover_tags_batch_with, AuthKey, AuthKeyCache,
    BurstKeyResolver, FlyoverMacInput, ResInfo, SecretValue, Tag, BW_ENC_MAX, RES_ID_MAX, TAG_LEN,
};
