//! Workspace umbrella crate for the Hummingbird reproduction.
//!
//! This crate exists so that the repository-level `tests/` and `examples/`
//! directories can exercise the public API of every workspace crate. All
//! functionality lives in the member crates under `crates/`; see the
//! [`hummingbird`] core crate for the primary entry points.

pub use hummingbird as core;
pub use hummingbird_baselines as baselines;
pub use hummingbird_control as control;
pub use hummingbird_crypto as crypto;
pub use hummingbird_dataplane as dataplane;
pub use hummingbird_ledger as ledger;
pub use hummingbird_netsim as netsim;
pub use hummingbird_wire as wire;
