//! The paper's motivating workload (§1): keeping a video call alive
//! through inter-domain congestion.
//!
//! A 4 Mbps video call crosses three ASes whose 20 Mbps peering links get
//! swamped by a 60 Mbps bulk transfer. We run the call twice — best effort
//! vs. a Hummingbird reservation — and compare goodput, loss and latency.
//!
//! Run with: `cargo run --release --example videocall`

use hummingbird::netsim::{LinearTopology, LinkSpec};
use hummingbird::{IsdAs, RouterConfig};

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;
const SEC: u64 = 1_000_000_000;
const RUN_S: u64 = 3;

struct CallResult {
    goodput_kbps: f64,
    delivery_pct: f64,
    mean_latency_ms: f64,
    max_latency_ms: f64,
}

fn run_call(reserved: bool) -> CallResult {
    let mut topo = LinearTopology::build(
        3,
        LinkSpec {
            bandwidth_bps: 20_000_000, // 20 Mbps peering links
            propagation_ns: 5_000_000, // 5 ms per link
            queue_cap_bytes: 256 * 1024,
        },
        START_NS,
        RouterConfig::default(),
    );
    // The video call: 4 Mbps of 1200 B frames.
    let call = topo.add_cbr_flow(
        IsdAs::new(1, 0xa),
        IsdAs::new(2, 0xb),
        1200,
        4_000,
        reserved.then_some(5_000),
        START_NS,
        START_NS + RUN_S * SEC,
    );
    // The congestion: a 60 Mbps bulk transfer sharing every link.
    let _bulk = topo.add_cbr_flow(
        IsdAs::new(3, 0xc),
        IsdAs::new(2, 0xb),
        1500,
        60_000,
        None,
        START_NS,
        START_NS + RUN_S * SEC,
    );
    topo.sim.run_until(START_NS + (RUN_S + 1) * SEC);
    let s = topo.sim.stats(call);
    CallResult {
        goodput_kbps: s.goodput_kbps(RUN_S as f64),
        delivery_pct: s.delivery_ratio() * 100.0,
        mean_latency_ms: s.mean_latency_ms(),
        max_latency_ms: s.latency_max_ns as f64 / 1e6,
    }
}

fn main() {
    println!("== Video call (4 Mbps) vs bulk transfer (60 Mbps) on 20 Mbps links ==\n");
    let best_effort = run_call(false);
    let reserved = run_call(true);

    println!("{:<22} {:>12} {:>12}", "metric", "best effort", "reserved");
    println!(
        "{:<22} {:>12.0} {:>12.0}",
        "goodput [kbps]", best_effort.goodput_kbps, reserved.goodput_kbps
    );
    println!(
        "{:<22} {:>11.1}% {:>11.1}%",
        "delivery", best_effort.delivery_pct, reserved.delivery_pct
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "mean latency [ms]", best_effort.mean_latency_ms, reserved.mean_latency_ms
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "max latency [ms]", best_effort.max_latency_ms, reserved.max_latency_ms
    );

    println!();
    if reserved.delivery_pct > 99.0 && best_effort.delivery_pct < 90.0 {
        println!(
            "OK: the reservation keeps the call at {:.1}% delivery while best effort \
             degrades to {:.1}%",
            reserved.delivery_pct, best_effort.delivery_pct
        );
    } else {
        println!(
            "note: delivery reserved {:.1}% vs best-effort {:.1}%",
            reserved.delivery_pct, best_effort.delivery_pct
        );
    }
}
