//! Bidirectional reservations (paper Appendix C).
//!
//! Hummingbird reservations are unidirectional, but because they are not
//! bound to network identities, a client can buy reservations for *both*
//! directions and simply ship the reverse-path credentials to the server.
//! Both directions are billed to the client; the server authenticates its
//! response packets like any Hummingbird sender.
//!
//! Run with: `cargo run --release --example bidirectional`

use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::{IsdAs, PurchaseSpec, ReservationBundle};

fn main() {
    // Forward direction: client -> server over 3 ASes.
    let mut fwd = Testbed::build(TestbedConfig { n_ases: 3, seed: 1, ..Default::default() })
        .expect("forward testbed");
    // Reverse direction: an independent chain (in a real deployment, the
    // reverse path's ASes; here a second simulated path).
    let mut rev = Testbed::build(TestbedConfig { n_ases: 3, seed: 2, ..Default::default() })
        .expect("reverse testbed");
    let t0 = fwd.cfg.start_unix_s;

    for tb in [&mut fwd, &mut rev] {
        tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).expect("stock");
    }

    // The client buys BOTH directions (it pays for the server's replies —
    // the property previous systems could not offer).
    let mut client = fwd.new_client("alice", 2_000);
    let mut client_rev = rev.new_client("alice", 2_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    let fwd_grants = fwd.acquire_path(&mut client, spec).expect("forward grants");
    let rev_grants = rev.acquire_path(&mut client_rev, spec).expect("reverse grants");
    println!(
        "client bought {} forward + {} reverse flyovers (both billed to the client)",
        fwd_grants.len(),
        rev_grants.len()
    );

    // Ship the reverse credentials to the server over any channel —
    // serialized, they are {} bytes.
    let bundle = ReservationBundle::from_grants(&rev_grants);
    let wire = bundle.encode();
    println!("reverse credential bundle: {} bytes", wire.len());
    let server_grants = ReservationBundle::decode(&wire).expect("bundle").into_grants();

    // Client sends forward with its grants; server responds with the
    // transferred grants. Verify both verify at their first routers.
    let client_addr = IsdAs::new(1, 0xa);
    let server_addr = IsdAs::new(2, 0xb);
    let now_ms = t0 * 1000;
    let now_ns = t0 * 1_000_000_000;

    let mut c2s =
        fwd.make_reserved_generator(client_addr, server_addr, &fwd_grants).expect("c2s generator");
    let mut pkt = c2s.generate(b"request: GET /quote", now_ms).expect("c2s pkt");
    let v = fwd.topo.sim.process_at_router(fwd.topo.as_nodes[0], &mut pkt, now_ns).unwrap();
    println!("client->server packet at first AS: {v:?}");
    assert!(v.is_flyover());

    let mut s2c = rev
        .make_reserved_generator(server_addr, client_addr, &server_grants)
        .expect("s2c generator");
    let mut pkt = s2c.generate(b"response: 42", now_ms).expect("s2c pkt");
    let v = rev.topo.sim.process_at_router(rev.topo.as_nodes[0], &mut pkt, now_ns).unwrap();
    println!("server->client packet at first AS: {v:?}");
    assert!(v.is_flyover());

    println!("\nOK: both directions ride reservations; the server never touched the chain.");
}
