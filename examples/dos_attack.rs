//! Adversarial scenarios from the security analysis (§5): what attackers
//! can and cannot do to Hummingbird reservations.
//!
//! 1. **Off-path flooding** — congestion cannot touch reserved traffic.
//! 2. **Reservation spoofing (D1)** — forged tags are dropped at the first
//!    honest router.
//! 3. **Overuse (D1)** — a compromised source exceeding its reservation is
//!    demoted by deterministic policing, never amplified.
//! 4. **On-reservation-set replay (Fig. 3)** — duplicated tags *do* pass
//!    authentication, and the two mitigations: duplicate suppression, or
//!    separate reservations per path.
//!
//! Run with: `cargo run --release --example dos_attack`

use hummingbird::netsim::{LinearTopology, LinkSpec};
use hummingbird::{Datapath, IsdAs, RouterConfig, Verdict};

const START_S: u64 = 1_700_000_000;
const START_NS: u64 = START_S * 1_000_000_000;
const SEC: u64 = 1_000_000_000;
const RUN_S: u64 = 2;

fn victim() -> IsdAs {
    IsdAs::new(1, 0xa)
}
fn dest() -> IsdAs {
    IsdAs::new(2, 0xb)
}
fn attacker() -> IsdAs {
    IsdAs::new(66, 0x666)
}

fn scenario_flooding() {
    println!("-- 1. off-path flooding (30 Mbps into 10 Mbps links) --");
    let mut topo = LinearTopology::build(3, LinkSpec::default(), START_NS, RouterConfig::default());
    let v = topo.add_cbr_flow(
        victim(),
        dest(),
        1000,
        2_000,
        Some(3_000),
        START_NS,
        START_NS + RUN_S * SEC,
    );
    let a =
        topo.add_cbr_flow(attacker(), dest(), 1000, 30_000, None, START_NS, START_NS + RUN_S * SEC);
    topo.sim.run_until(START_NS + (RUN_S + 1) * SEC);
    let vs = topo.sim.stats(v);
    let as_ = topo.sim.stats(a);
    println!(
        "   victim: {:.1}% delivered at {:.2} ms | attacker: {:.1}% delivered, {} queue drops",
        vs.delivery_ratio() * 100.0,
        vs.mean_latency_ms(),
        as_.delivery_ratio() * 100.0,
        as_.queue_drops
    );
    assert!(vs.delivery_ratio() > 0.99);
}

fn scenario_spoofing() {
    println!("-- 2. reservation spoofing with forged keys --");
    let mut topo = LinearTopology::build(2, LinkSpec::default(), START_NS, RouterConfig::default());
    // Forge: keys from a different (attacker-chosen) secret value.
    let mut other = LinearTopology::build_seeded(
        2,
        LinkSpec::default(),
        START_NS,
        RouterConfig::default(),
        0x66,
    );
    let mut forged_gen = other.make_generator(attacker(), dest());
    for hop in 0..2 {
        let res = other.make_reservation(hop, 5_000, START_S as u32 - 5, u16::MAX);
        forged_gen.attach_reservation(hop, res).unwrap();
    }
    let entry = topo.as_nodes[0];
    let forged = topo.sim.add_flow(hummingbird::netsim::Flow {
        generator: forged_gen,
        entry,
        payload_len: 500,
        interval_ns: 1_000_000,
        start_ns: START_NS,
        stop_ns: START_NS + RUN_S * SEC,
    });
    topo.sim.run_until(START_NS + (RUN_S + 1) * SEC);
    let fs = topo.sim.stats(forged);
    println!(
        "   attacker sent {} forged packets; {} dropped at the first router, {} delivered",
        fs.sent_pkts, fs.router_drops, fs.delivered_pkts
    );
    assert_eq!(fs.delivered_pkts, 0);
}

fn scenario_overuse() {
    println!("-- 3. overuse of a valid reservation (8 Mbps through 2 Mbps) --");
    let mut topo = LinearTopology::build(
        2,
        LinkSpec { bandwidth_bps: 100_000_000, ..Default::default() },
        START_NS,
        RouterConfig::default(),
    );
    let f = topo.add_cbr_flow(victim(), dest(), 1000, 8_000, Some(2_000), START_NS, START_NS + SEC);
    topo.sim.run_until(START_NS + 2 * SEC);
    let s = topo.sim.stats(f);
    let rs = topo.sim.router_stats(topo.as_nodes[0]).unwrap();
    println!(
        "   {} packets sent, {} kept priority, {} demoted to best effort, 0 dropped (no punishment)",
        s.sent_pkts, rs.flyover, rs.demoted_overuse
    );
    assert!(rs.demoted_overuse > s.sent_pkts / 2);
    assert!(s.delivery_ratio() > 0.99);
}

fn scenario_replay(dup_suppression: bool) {
    let label = if dup_suppression { "with" } else { "without" };
    println!("-- 4. on-reservation-set replay, {label} duplicate suppression --");
    let cfg = RouterConfig { duplicate_suppression: dup_suppression, ..Default::default() };
    let mut topo = LinearTopology::build(2, LinkSpec::default(), START_NS, cfg);
    let v = topo.add_cbr_flow(
        victim(),
        dest(),
        1000,
        2_000,
        Some(2_500),
        START_NS,
        START_NS + RUN_S * SEC,
    );
    let _flood =
        topo.add_cbr_flow(attacker(), dest(), 1000, 30_000, None, START_NS, START_NS + RUN_S * SEC);
    // Adversary duplicates every victim packet 19x, timed to pin the
    // token bucket right before the next original.
    let tap = topo.sim.add_replay_tap(v, topo.as_nodes[0], 19, 200_000);
    topo.sim.run_until(START_NS + (RUN_S + 1) * SEC);
    let vs = topo.sim.stats(v);
    let ts = topo.sim.stats(tap);
    let rs = topo.sim.router_stats(topo.as_nodes[0]).unwrap();
    println!(
        "   victim delivery {:.1}% | {} replays injected, {} dropped as duplicates, {} demotions",
        vs.delivery_ratio() * 100.0,
        ts.sent_pkts,
        ts.router_drops,
        rs.demoted_overuse
    );
    if dup_suppression {
        assert!(vs.delivery_ratio() > 0.99);
    } else {
        assert!(vs.delivery_ratio() < 0.95);
    }
}

/// The replay defence probed directly through the unified `Datapath`
/// trait: a router built with the duplicate-suppression stage enabled
/// (via `DatapathBuilder`) accepts a packet once and drops the replay —
/// the same API every engine in the workspace speaks.
fn scenario_replay_via_datapath() {
    println!("-- 5. replay probe through the Datapath trait --");
    let mut topo = LinearTopology::build(1, LinkSpec::default(), START_NS, RouterConfig::default());
    let mut generator = topo.make_generator(victim(), dest());
    let res = topo.make_reservation(0, 5_000, START_S as u32 - 5, u16::MAX);
    generator.attach_reservation(0, res).unwrap();
    let mut original = generator.generate(&[0u8; 128], START_S * 1000).unwrap();
    let mut replay = original.clone();
    // Hop 0's secrets with the duplicate-suppression stage composed in.
    let mut router =
        topo.make_hop_engine(0, RouterConfig { duplicate_suppression: true, ..Default::default() });
    let first = router.process(&mut original, START_NS);
    let second = router.process(&mut replay, START_NS + 1_000);
    println!(
        "   engine '{}': original -> {:?}, replay -> {:?}",
        router.engine_name(),
        first,
        second
    );
    assert!(matches!(second, Verdict::Drop(_)));
}

fn main() {
    println!("== Hummingbird under attack (paper §5) ==\n");
    scenario_flooding();
    scenario_spoofing();
    scenario_overuse();
    scenario_replay(false);
    scenario_replay(true);
    scenario_replay_via_datapath();
    println!("\nOK: D1 holds unconditionally; D2 holds except for the documented");
    println!("on-reservation-set replay, which duplicate suppression (or separate");
    println!("per-path reservations) eliminates — exactly the paper's analysis.");
}
