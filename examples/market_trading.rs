//! Bandwidth assets as tradable objects (§4.2): issue, split, fuse,
//! resell, and the atomicity of path purchases — with real gas accounting.
//!
//! Run with: `cargo run --release --example market_trading`

use hummingbird::control::pki::TrustAnchors;
use hummingbird::control::{AsService, BandwidthAsset, Client, ControlPlane, Direction};
use hummingbird::ledger::{Address, ObjectId};
use hummingbird::{IsdAs, PurchaseSpec};
use hummingbird_crypto::sig::SecretKey;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOUR: u64 = 3600;

fn sui(mist: i128) -> f64 {
    mist as f64 / 1e9
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let as_id = IsdAs::new(1, 0x2001);
    let cert = SecretKey::from_seed(b"market-demo-as");
    let mut anchors = TrustAnchors::new();
    anchors.install(as_id, cert.public());
    let mut cp = ControlPlane::new(anchors);
    let mut service = AsService::new(as_id, cert, [3u8; 16], 1 << 16);
    cp.faucet(service.account, 1_000);

    println!("== AS registration & issuance ==");
    let rx = service.register(&mut cp, &mut rng).expect("register");
    println!("register_as: {:.5} SUI (possession proof verified)", rx.gas.total_sui());

    // One big asset: 100 Mbps for 10 hours on interface 7 (egress).
    let big = BandwidthAsset {
        as_id,
        bandwidth_kbps: 100_000,
        start_time: 0,
        expiry_time: 10 * HOUR,
        interface: 7,
        direction: Direction::Egress,
        time_granularity: 60,
        min_bandwidth_kbps: 100,
    };
    let rx = service.issue_asset(&mut cp, big).expect("issue");
    let asset = rx.value;
    println!("issue 100 Mbps x 10 h: {:.5} SUI", rx.gas.total_sui());

    println!("\n== Splitting in time and bandwidth ==");
    let rx = cp.split_time(service.account, asset, 2 * HOUR).expect("split_time");
    let (head, tail) = rx.value;
    println!("split_time @2h: {:.5} SUI -> [0,2h) and [2h,10h)", rx.gas.total_sui());
    let rx = cp.split_bandwidth(service.account, head, 30_000).expect("split_bw");
    let (small, rest) = rx.value;
    println!("split_bandwidth 30/70: {:.5} SUI -> 30 Mbps and 70 Mbps", rx.gas.total_sui());

    println!("\n== Fusing back (earns the storage rebate) ==");
    let rx = cp.fuse_bandwidth(service.account, small, rest).expect("fuse_bw");
    println!("fuse_bandwidth: {:+.5} SUI (negative = net credit)", rx.gas.total_sui());
    let fused = rx.value;
    let rx = cp.fuse_time(service.account, fused, tail).expect("fuse_time");
    println!("fuse_time: {:+.5} SUI", rx.gas.total_sui());
    let whole = rx.value;
    let restored = cp.asset(whole).unwrap();
    assert_eq!(restored.bandwidth_kbps, 100_000);
    assert_eq!(restored.expiry_time, 10 * HOUR);
    println!("asset restored to 100 Mbps x 10 h after round trip");

    println!("\n== Marketplace: list, partial buy, resale ==");
    let market = cp.create_marketplace(service.account).expect("market").value;
    cp.register_seller(service.account, market).expect("seller");
    // Need an ingress asset too for a redeemable pair later.
    let ingress =
        BandwidthAsset { interface: 2, direction: Direction::Ingress, ..cp.asset(whole).unwrap() };
    let ingress_asset = service.issue_asset(&mut cp, ingress).expect("issue ing").value;
    let l_eg = cp.create_listing(service.account, market, whole, 2).expect("list").value;
    let l_in = cp.create_listing(service.account, market, ingress_asset, 2).expect("list").value;
    println!("listed ingress+egress at 2 MIST per kbps*s");

    let mut alice = Client::new(Address::from_label("alice"));
    cp.faucet(alice.account, 1_000);
    // Worst-case split: interior hour, fraction of bandwidth.
    let spec = PurchaseSpec { start: HOUR, end: 2 * HOUR, bandwidth_kbps: 10_000 };
    let seller_before = cp.ledger.balance(service.account);
    let rx = alice.buy(&mut cp, market, l_eg, spec).expect("buy");
    let bought = rx.value;
    println!(
        "alice bought 10 Mbps x 1 h (split both dims): gas {:.5} SUI, price {:.4} SUI",
        rx.gas.total_sui(),
        sui(i128::from(cp.ledger.balance(service.account)) - i128::from(seller_before))
    );
    println!(
        "market now re-lists {} leftover pieces",
        cp.listings(market).len() - 1 // minus the untouched ingress listing
    );

    // Alice resells her piece to Bob at a profit (free trade).
    let mut bob = Client::new(Address::from_label("bob"));
    cp.faucet(bob.account, 1_000);
    let rx = cp.create_listing(alice.account, market, bought, 3).expect("relist");
    println!("alice re-listed her piece at 3 MIST per kbps*s (50% markup)");
    let bob_spec = PurchaseSpec { start: HOUR, end: 2 * HOUR, bandwidth_kbps: 10_000 };
    let rx2 = bob.buy(&mut cp, market, rx.value, bob_spec).expect("bob buys");
    println!("bob bought it whole: asset {:?} now belongs to bob", rx2.value);

    println!("\n== Atomicity: a failing multi-hop purchase moves nothing ==");
    let balance_before = cp.ledger.balance(bob.account);
    let listings_before = cp.listings(market).len();
    let bogus = ObjectId([0xAB; 32]);
    let err = bob.buy_and_redeem_path(
        &mut cp,
        market,
        &[
            (l_in, l_eg, PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 5_000 }),
            (bogus, bogus, PurchaseSpec { start: 0, end: HOUR, bandwidth_kbps: 5_000 }),
        ],
        &mut rng,
    );
    assert!(err.is_err());
    assert_eq!(cp.ledger.balance(bob.account), balance_before);
    assert_eq!(cp.listings(market).len(), listings_before);
    println!("two-hop purchase with one bogus hop failed atomically: no SUI or assets moved");

    println!("\nOK: asset lifecycle, market trading and atomicity all verified");
}
