//! Quickstart: the complete life of a Hummingbird reservation.
//!
//! 1. Five ASes register with the asset contract (PKI possession proofs)
//!    and list bandwidth assets on the marketplace.
//! 2. A client atomically buys **and** redeems reservations for the whole
//!    path in one blockchain transaction.
//! 3. Each AS answers with a sealed `(ResInfo, A_K)` delivery (fast path).
//! 4. The client authenticates packets with the keys; the simulated border
//!    routers verify and prioritize them end to end.
//! 5. The same packets are driven through a border router directly via
//!    the [`hummingbird::Datapath`] trait — the one API every engine
//!    (router, gateway, baselines) implements, single-packet and batch.
//!
//! Run with: `cargo run --release --example quickstart`

use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::{Datapath, IsdAs, PacketBuf, PurchaseSpec};

fn main() {
    let cfg = TestbedConfig { n_ases: 5, ..Default::default() };
    let n = cfg.n_ases;
    let mut tb = Testbed::build(cfg).expect("testbed");
    let t0 = tb.cfg.start_unix_s;
    println!("== Hummingbird quickstart: {n} ASes, linear path ==\n");

    // --- ASes stock the market --------------------------------------
    let listings = tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).expect("stock market");
    println!(
        "ASes issued and listed {} assets (1 ingress + 1 egress per hop, 100 Mbps, 1 h)",
        listings.len() * 2
    );

    // --- Client: atomic path purchase --------------------------------
    let mut client = tb.new_client("alice", 1_000);
    let balance_before = tb.control.ledger.balance(client.account);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 4_000 };
    let grants = tb.acquire_path(&mut client, spec).expect("acquire path");
    let balance_after = tb.control.ledger.balance(client.account);
    println!("\nclient bought + redeemed {} flyovers atomically (4 Mbps, 10 min)", grants.len());
    println!("  paid {:.4} SUI (price + gas)", (balance_before - balance_after) as f64 / 1e9);
    for (i, g) in grants.iter().enumerate() {
        println!(
            "  hop {i}: AS {} if {}->{} ResID {} start {} dur {}s",
            g.as_id,
            g.res_info.ingress,
            g.res_info.egress,
            g.res_info.res_id,
            g.res_info.res_start,
            g.res_info.duration
        );
    }

    // --- Data plane: send prioritized traffic ------------------------
    let src = IsdAs::new(1, 0xa);
    let dst = IsdAs::new(2, 0xb);
    let generator = tb.make_reserved_generator(src, dst, &grants).expect("generator");
    let entry = tb.topo.as_nodes[0];
    let start_ns = t0 * 1_000_000_000;
    let flow = tb.topo.sim.add_flow(hummingbird::netsim::Flow {
        generator,
        entry,
        payload_len: 1000,
        // ~3.7 Mbps on the wire: inside the granted 4 Mbps class after
        // the floor rounding of the 10-bit bandwidth encoding.
        interval_ns: 2_500_000,
        start_ns,
        stop_ns: start_ns + 2_000_000_000,
    });
    tb.topo.sim.run_until(start_ns + 3_000_000_000);
    let stats = tb.topo.sim.stats(flow);
    println!("\nsent {} packets over the simulated path:", stats.sent_pkts);
    println!(
        "  delivered {} ({:.1}%), mean latency {:.2} ms",
        stats.delivered_pkts,
        stats.delivery_ratio() * 100.0,
        stats.mean_latency_ms()
    );
    for (i, node) in tb.topo.as_nodes.iter().enumerate() {
        let rs = tb.topo.sim.router_stats(*node).unwrap();
        println!(
            "  AS {i}: processed {} | priority {} | best-effort {} | dropped {}",
            rs.processed, rs.flyover, rs.best_effort, rs.dropped
        );
    }
    assert_eq!(stats.delivered_pkts, stats.sent_pkts);
    println!("\nOK: every packet verified and forwarded with priority at all {n} ASes");

    // --- The unified Datapath API ------------------------------------
    // Everything above drove engines through the simulator; the same
    // packets can be processed against any engine directly through the
    // `Datapath` trait — here hop 0's router, batch-first.
    let mut generator = tb.make_reserved_generator(src, dst, &grants).expect("generator");
    let now_ns = t0 * 1_000_000_000;
    let mut batch: Vec<PacketBuf> = (0..8)
        .map(|i| PacketBuf::new(generator.generate(&[0u8; 200], t0 * 1000 + i).unwrap()))
        .collect();
    let mut verdicts = Vec::new();
    // Returns (priority verdicts, batch size) for any engine.
    let mut verdict_probe = |engine: &mut dyn Datapath| {
        verdicts.clear();
        for pkt in &mut batch {
            pkt.reset(); // engines advance the header in place
        }
        engine.process_batch(&mut batch, now_ns, &mut verdicts);
        (verdicts.iter().filter(|v| v.is_flyover()).count(), verdicts.len())
    };
    let mut router = tb.topo.make_hop_engine(0, tb.cfg.router);
    let (priority, total) = verdict_probe(router.as_mut());
    println!(
        "Datapath batch API: {} of {} packets verified with priority at a fresh hop-0 \"{}\" engine",
        priority,
        total,
        router.engine_name(),
    );
    assert_eq!(priority, total);

    // --- Sharded runtime facade --------------------------------------
    // The same trait also fronts a whole multi-core router: a
    // `ShardedRouter` RSS-steers each reservation to the one shard that
    // polices it, and behaves observably like the single engine above.
    let mut sharded = tb.topo.make_sharded_hop_engine(0, tb.cfg.router, 4);
    let (priority, total) = verdict_probe(sharded.as_mut());
    println!(
        "Sharded runtime: the same {} packets verified with priority across a 4-shard \"{}\" router",
        priority,
        sharded.engine_name(),
    );
    assert_eq!(priority, total);
}
