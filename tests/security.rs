//! Security-property tests at the public API level, following the paper's
//! analysis (§5): C1 secure reservation establishment, C2 economic
//! fairness, D1 overuse protection, D2 QoS.

use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::{IsdAs, PurchaseSpec};
use hummingbird_control::pki::{sign_registration, TrustAnchors};
use hummingbird_control::{AsService, Client, ControlPlane};
use hummingbird_crypto::sealed;
use hummingbird_crypto::sig::SecretKey;
use hummingbird_ledger::Address;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// C1: only the AS holding the certified key can register and issue; an
/// attacker cannot create assets for someone else's AS.
#[test]
fn c1_registration_is_unforgeable() {
    let mut rng = StdRng::seed_from_u64(1);
    let honest_key = SecretKey::from_seed(b"honest");
    let as_id = IsdAs::new(1, 100);
    let mut anchors = TrustAnchors::new();
    anchors.install(as_id, honest_key.public());
    let mut cp = ControlPlane::new(anchors);

    // Attacker tries with its own key.
    let attacker_key = SecretKey::from_seed(b"attacker");
    let attacker = Address::from_pubkey(&attacker_key.public());
    cp.faucet(attacker, 100);
    let forged = sign_registration(&attacker_key, as_id, attacker, &mut rng);
    assert!(cp.register_as(attacker, as_id, &forged).is_err());

    // Attacker replays the honest AS's proof under its own account: the
    // proof binds the account address, so this fails too.
    let honest_account = Address::from_pubkey(&honest_key.public());
    let honest_proof = sign_registration(&honest_key, as_id, honest_account, &mut rng);
    assert!(cp.register_as(attacker, as_id, &honest_proof).is_err());

    // The honest AS succeeds.
    cp.faucet(honest_account, 100);
    assert!(cp.register_as(honest_account, as_id, &honest_proof).is_ok());
}

/// C1: reservation keys are confidential — the delivery on chain is
/// sealed to the redeemer's ephemeral key, and an observer of the chain
/// (any other account) cannot decrypt it.
#[test]
fn c1_delivered_keys_are_confidential() {
    let mut tb = Testbed::build(TestbedConfig::default()).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut alice = tb.new_client("alice", 1_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    // Buy + redeem but do NOT collect yet; the sealed deliveries sit on
    // chain owned by alice.
    let hops: Vec<_> = {
        let listings = tb.control.listings(tb.market);
        // ingress/egress pair per hop, matching interfaces.
        (0..tb.cfg.n_ases)
            .map(|i| {
                let (ing_if, eg_if) = hummingbird::LinearTopology::interfaces(tb.cfg.n_ases, i);
                let ing = listings
                    .iter()
                    .find(|(_, _, a)| {
                        a.interface == ing_if
                            && a.as_id == Testbed::as_id(i)
                            && a.direction == hummingbird::Direction::Ingress
                    })
                    .unwrap()
                    .0;
                let eg = listings
                    .iter()
                    .find(|(_, _, a)| {
                        a.interface == eg_if
                            && a.as_id == Testbed::as_id(i)
                            && a.direction == hummingbird::Direction::Egress
                    })
                    .unwrap()
                    .0;
                (ing, eg, spec)
            })
            .collect()
    };
    let mut rng = StdRng::seed_from_u64(9);
    alice.buy_and_redeem_path(&mut tb.control, tb.market, &hops, &mut rng).unwrap();
    for service in tb.services.iter_mut() {
        service.process_requests(&mut tb.control, &mut rng).unwrap();
    }

    // An eavesdropper reads the public chain state but cannot open any
    // sealed delivery with keys of its own.
    let deliveries = tb.control.deliveries_for(alice.account);
    assert_eq!(deliveries.len(), tb.cfg.n_ases);
    let eve_key = SecretKey::from_seed(b"eve");
    for (_, d) in &deliveries {
        assert!(sealed::open(&eve_key, &d.sealed).is_err());
    }
    // Alice (holding the matching ephemeral secrets) can.
    assert_eq!(alice.collect_deliveries(&tb.control).unwrap(), tb.cfg.n_ases);
}

/// C2 (economic fairness): starving others requires buying the bandwidth
/// at market price — Sybil accounts don't help; the price paid scales
/// with the bandwidth acquired, not the number of accounts.
#[test]
fn c2_sybil_accounts_pay_full_market_price() {
    let price_for = |n_accounts: usize| -> u64 {
        let mut tb = Testbed::build(TestbedConfig { n_ases: 1, ..Default::default() }).unwrap();
        let t0 = tb.cfg.start_unix_s;
        tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
        // The adversary wants the whole 100 Mbps hour; it splits the
        // purchase across `n_accounts` Sybils.
        let total_bw = 100_000u64;
        let per_account = total_bw / n_accounts as u64;
        let mut total_paid = 0u64;
        for s in 0..n_accounts {
            let mut sybil = tb.new_client(&format!("sybil-{s}"), 100_000);
            let before = tb.control.ledger.balance(sybil.account);
            let spec = PurchaseSpec { start: t0 - 60, end: t0 + 3540, bandwidth_kbps: per_account };
            tb.acquire_path(&mut sybil, spec).unwrap();
            total_paid += before - tb.control.ledger.balance(sybil.account);
        }
        total_paid
    };
    let one = price_for(1);
    let four = price_for(4);
    // Splitting across Sybils is not cheaper (gas makes it strictly
    // worse; allow 1% numerical slack on the comparison).
    assert!(four as f64 >= one as f64 * 0.99, "4 sybils paid {four} vs single {one}");
}

/// D1: an adversary cannot *undetectably* shift a reservation to another
/// destination — the destination address is authenticated in every tag
/// (reservation stealing mitigation, §5.4).
#[test]
fn d1_reservation_stealing_breaks_the_tag() {
    let mut tb = Testbed::build(TestbedConfig { n_ases: 2, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut client = tb.new_client("alice", 1_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    let grants = tb.acquire_path(&mut client, spec).unwrap();
    let mut generator =
        tb.make_reserved_generator(IsdAs::new(1, 0xa), IsdAs::new(2, 0xb), &grants).unwrap();
    let node = tb.topo.as_nodes[0];
    let now = t0 * 1_000_000_000;

    // Control: the untampered packet verifies.
    let mut ok_pkt = generator.generate(&[0u8; 200], t0 * 1000).unwrap();
    let v1 = tb.topo.sim.process_at_router(node, &mut ok_pkt, now).unwrap();
    assert!(v1.is_flyover(), "control packet must verify: {v1:?}");

    // The thief rewrites the destination AS in the address header
    // (DstAS occupies bytes 14..20; common header is 12 B).
    let mut stolen = generator.generate(&[0u8; 200], t0 * 1000).unwrap();
    stolen[18] ^= 0xff;
    let v2 = tb.topo.sim.process_at_router(node, &mut stolen, now).unwrap();
    assert!(
        matches!(v2, hummingbird::Verdict::Drop(_)),
        "stolen-destination packet must be dropped: {v2:?}"
    );
}

/// D1: nobody can use more bandwidth than reserved — validated end to end
/// through the policing pipeline in `hummingbird-netsim` tests; here we
/// confirm the AS-side cap on concurrent reservations (ResIDs exhausted →
/// redeem request fails rather than silently over-committing monitoring).
#[test]
fn d1_as_can_cap_monitored_reservations() {
    let mut tb =
        Testbed::build(TestbedConfig { n_ases: 1, res_id_cap: 2, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 1_000 };

    let mut c1 = tb.new_client("c1", 1_000);
    let mut c2 = tb.new_client("c2", 1_000);
    let mut c3 = tb.new_client("c3", 1_000);
    tb.acquire_path(&mut c1, spec).unwrap();
    tb.acquire_path(&mut c2, spec).unwrap();
    // Third concurrent reservation on the same interface: the allocator is
    // at its cap.
    let err = tb.acquire_path(&mut c3, spec);
    assert!(matches!(
        err,
        Err(hummingbird::TestbedError::Service(hummingbird_control::ServiceError::ResIdsExhausted))
    ));
}

/// Control-plane independence: a reservation obtained by one party is
/// usable by another (keys are not bound to network identities).
#[test]
fn reservations_are_identity_free() {
    let mut tb = Testbed::build(TestbedConfig { n_ases: 2, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut buyer = tb.new_client("buyer", 1_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    let grants = tb.acquire_path(&mut buyer, spec).unwrap();

    // A completely different sender (different SCION source) uses them.
    let other_src = IsdAs::new(9, 0x999);
    let mut generator = tb.make_reserved_generator(other_src, IsdAs::new(2, 0xb), &grants).unwrap();
    let mut pkt = generator.generate(&[0u8; 100], t0 * 1000).unwrap();
    let v =
        tb.topo.sim.process_at_router(tb.topo.as_nodes[0], &mut pkt, t0 * 1_000_000_000).unwrap();
    assert!(v.is_flyover(), "{v:?}");
}

/// AS services must only serve requests addressed to them; a request for
/// AS A never reaches AS B's service.
#[test]
fn services_only_see_their_own_requests() {
    let mut tb = Testbed::build(TestbedConfig { n_ases: 3, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut client = tb.new_client("alice", 1_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };

    // Buy-and-redeem, then check pending queues before processing.
    let listings = tb.control.listings(tb.market);
    let hops: Vec<_> = (0..3)
        .map(|i| {
            let (ing_if, eg_if) = hummingbird::LinearTopology::interfaces(3, i);
            let find = |interface: u16, dir: hummingbird::Direction| {
                listings
                    .iter()
                    .find(|(_, _, a)| {
                        a.as_id == Testbed::as_id(i)
                            && a.interface == interface
                            && a.direction == dir
                    })
                    .unwrap()
                    .0
            };
            (
                find(ing_if, hummingbird::Direction::Ingress),
                find(eg_if, hummingbird::Direction::Egress),
                spec,
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(3);
    client.buy_and_redeem_path(&mut tb.control, tb.market, &hops, &mut rng).unwrap();
    for (i, service) in tb.services.iter().enumerate() {
        let pending = tb.control.pending_requests(service.account);
        assert_eq!(pending.len(), 1, "exactly one request for AS {i}");
        assert_eq!(pending[0].1.asset.as_id, Testbed::as_id(i));
    }
}

/// Registration also works through the AsService convenience wrapper when
/// anchors are pre-installed (regression guard for the registration flow).
#[test]
fn service_registration_roundtrip() {
    let mut rng = StdRng::seed_from_u64(5);
    let cert = SecretKey::from_seed(b"svc");
    let as_id = IsdAs::new(4, 44);
    let mut anchors = TrustAnchors::new();
    anchors.install(as_id, cert.public());
    let mut cp = ControlPlane::new(anchors);
    let mut service = AsService::new(as_id, cert, [1u8; 16], 100);
    cp.faucet(service.account, 100);
    service.register(&mut cp, &mut rng).unwrap();
    assert!(service.auth_token().is_some());
    assert_eq!(cp.as_account(as_id), Some(service.account));

    // A second client cannot impersonate the service's account.
    let mallory = Client::new(Address::from_label("mallory"));
    assert!(cp.pending_requests(mallory.account).is_empty());
}
