//! Property-based tests on core invariants: policing rate bounds, interval
//! coloring validity and competitiveness, MAC agreement between source and
//! router, and ledger conservation.

use hummingbird_coloring::{color_optimal, max_overlap, FirstFit, Interval, KiersteadTrotter};
use hummingbird_crypto::{FlyoverMacInput, ResInfo, SecretValue};
use hummingbird_dataplane::policing::{transmission_time_ns, Policer};
use hummingbird_dataplane::FwdClass;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Policing (Algorithm 1)
// ---------------------------------------------------------------------

proptest! {
    /// Over any interval, accepted traffic never exceeds
    /// `rate · time + BurstTime · rate` — the token-bucket guarantee the
    /// AS relies on to dimension its reservations.
    #[test]
    fn policer_rate_bound(
        bw_kbps in 100u64..1_000_000,
        pkt_len in 64u16..1500,
        n_pkts in 1usize..400,
        spacing_ns in 0u64..2_000_000,
    ) {
        let burst_ns = 50_000_000u64;
        let mut p = Policer::new(4, burst_ns);
        let t0 = 1_000_000_000u64;
        let mut accepted_bits = 0u64;
        let mut now = t0;
        for _ in 0..n_pkts {
            if p.check(0, bw_kbps, pkt_len, now) == FwdClass::Flyover {
                accepted_bits += u64::from(pkt_len) * 8;
            }
            now += spacing_ns;
        }
        let elapsed_ns = now - t0;
        // bits allowed = rate(kbps) * (elapsed + burst) in ns / 1e6.
        let allowance = bw_kbps as u128 * (elapsed_ns + burst_ns) as u128 / 1_000_000u128
            + u64::from(pkt_len) as u128 * 8; // one packet of slack at the boundary
        prop_assert!(
            (accepted_bits as u128) <= allowance,
            "accepted {accepted_bits} bits > allowance {allowance}"
        );
    }

    /// Conforming CBR traffic (below the reserved rate, packet fits the
    /// burst) is never demoted.
    #[test]
    fn policer_never_demotes_conforming_traffic(
        bw_kbps in 1_000u64..1_000_000,
        pkt_len in 64u16..1500,
        n_pkts in 1usize..200,
    ) {
        let tx = transmission_time_ns(pkt_len, bw_kbps);
        prop_assume!(tx < 50_000_000); // packet fits the burst budget
        let mut p = Policer::new(4, 50_000_000);
        let mut now = 1_000_000_000u64;
        for i in 0..n_pkts {
            let v = p.check(0, bw_kbps, pkt_len, now);
            prop_assert_eq!(v, FwdClass::Flyover, "packet {} demoted", i);
            now += tx; // send exactly at the reserved rate
        }
    }
}

// ---------------------------------------------------------------------
// Interval coloring (§4.4)
// ---------------------------------------------------------------------

fn arb_intervals() -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec((0u64..500, 1u64..120), 1..80)
        .prop_map(|v| v.into_iter().map(|(s, l)| Interval::new(s, s + l)).collect())
}

proptest! {
    #[test]
    fn first_fit_coloring_is_always_valid(intervals in arb_intervals()) {
        let mut ff = FirstFit::new(u32::MAX);
        for iv in &intervals {
            ff.assign(*iv).unwrap();
        }
        prop_assert!(ff.is_valid());
    }

    #[test]
    fn kt_is_valid_and_within_3x_optimal(intervals in arb_intervals()) {
        let mut kt = KiersteadTrotter::new();
        for iv in &intervals {
            kt.assign(*iv);
        }
        prop_assert!(kt.is_valid());
        let omega = max_overlap(&intervals) as u32;
        prop_assert!(kt.high_water() < 3 * omega, "KT exceeded 3ω");
    }

    #[test]
    fn offline_optimal_is_optimal(intervals in arb_intervals()) {
        let (colors, used) = color_optimal(&intervals);
        prop_assert_eq!(used as usize, max_overlap(&intervals));
        for i in 0..intervals.len() {
            for j in i + 1..intervals.len() {
                if colors[i] == colors[j] {
                    prop_assert!(!intervals[i].overlaps(&intervals[j]));
                }
            }
        }
    }

    /// FirstFit never uses more colors than intervals, and at least ω.
    #[test]
    fn first_fit_bracket(intervals in arb_intervals()) {
        let mut ff = FirstFit::new(u32::MAX);
        for iv in &intervals {
            ff.assign(*iv).unwrap();
        }
        let used = ff.high_water() as usize + 1;
        prop_assert!(used >= max_overlap(&intervals));
        prop_assert!(used <= intervals.len());
    }
}

// ---------------------------------------------------------------------
// MAC agreement: the source and the router derive identical tags from
// shared inputs, and any field change breaks agreement.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn source_and_router_agree_on_tags(
        sv_key: [u8; 16],
        ingress: u16, egress: u16,
        res_id in 0u32..=hummingbird_crypto::RES_ID_MAX,
        bw in 0u16..=hummingbird_crypto::BW_ENC_MAX,
        res_start: u32, duration: u16,
        dst_isd: u16, dst_as: u64, pkt_len: u16, off: u16, millis: u16, counter: u16,
    ) {
        let sv = SecretValue::new(sv_key);
        let info = ResInfo { ingress, egress, res_id, bw_encoded: bw, res_start, duration };
        let source_key = sv.derive_key(&info);          // via control plane
        let router_key = sv.derive_key(&info);          // re-derived on the fly
        let input = FlyoverMacInput {
            dst_isd, dst_as, pkt_len, res_start_offset: off, millis_ts: millis, counter,
        };
        prop_assert_eq!(source_key.flyover_mac(&input), router_key.flyover_mac(&input));
    }

    #[test]
    fn any_resinfo_bitflip_changes_the_key(
        sv_key: [u8; 16],
        info in (any::<u16>(), any::<u16>(), 0u32..=hummingbird_crypto::RES_ID_MAX,
                 0u16..=hummingbird_crypto::BW_ENC_MAX, any::<u32>(), any::<u16>())
            .prop_map(|(ingress, egress, res_id, bw_encoded, res_start, duration)| ResInfo {
                ingress, egress, res_id, bw_encoded, res_start, duration,
            }),
        field in 0usize..6,
    ) {
        let sv = SecretValue::new(sv_key);
        let k1 = sv.derive_key(&info);
        let mut info2 = info;
        match field {
            0 => info2.ingress ^= 1,
            1 => info2.egress ^= 1,
            2 => info2.res_id ^= 1,
            3 => info2.bw_encoded ^= 1,
            4 => info2.res_start ^= 1,
            _ => info2.duration ^= 1,
        }
        prop_assert_ne!(sv.derive_key(&info2), k1);
    }
}

// ---------------------------------------------------------------------
// Ledger conservation
// ---------------------------------------------------------------------

proptest! {
    /// Payments conserve total supply minus burned gas plus rebates; no
    /// transaction sequence can mint money out of thin air.
    #[test]
    fn ledger_conserves_value(transfers in prop::collection::vec((0u8..4, 0u8..4, 0u64..1000), 1..20)) {
        use hummingbird_ledger::{Address, Ledger, MIST_PER_SUI};
        let mut l = Ledger::new();
        let addrs: Vec<Address> =
            (0..4).map(|i| Address::from_label(&format!("acct-{i}"))).collect();
        for a in &addrs {
            l.mint(*a, 10 * MIST_PER_SUI);
        }
        let initial = l.total_supply();
        let mut burned: u128 = 0;
        for (from, to, amount) in transfers {
            let from = addrs[from as usize];
            let to = addrs[to as usize];
            if let Ok(rx) = l.execute(from, |ctx| {
                ctx.pay(to, amount);
                Ok(())
            }) {
                burned += rx.gas.total_mist().max(0) as u128;
            }
        }
        prop_assert_eq!(l.total_supply() + burned, initial);
    }
}
