//! Partial path protection end to end (§3.3 ❸ / §3.1 "Independent &
//! Composable Flyover Reservations"): a client reserves only the congested
//! middle hop of a five-AS path, through the real market, and its traffic
//! rides priority exactly there.

use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::{IsdAs, PurchaseSpec};

const SEC: u64 = 1_000_000_000;

#[test]
fn middle_hop_only_reservation() {
    let mut tb = Testbed::build(TestbedConfig { n_ases: 5, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();

    let mut client = tb.new_client("partial", 1_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 3_000 };
    // Only hop 2 (the middle AS) is reserved.
    let grants = tb.acquire_hops(&mut client, spec, &[2]).unwrap();
    assert_eq!(grants.len(), 1);
    assert_eq!(grants[0].0, 2);

    let generator = tb
        .make_partially_reserved_generator(IsdAs::new(1, 0xa), IsdAs::new(2, 0xb), &grants)
        .unwrap();
    let entry = tb.topo.as_nodes[0];
    let start_ns = t0 * SEC;
    let flow = tb.topo.sim.add_flow(hummingbird::netsim::Flow {
        generator,
        entry,
        payload_len: 500,
        interval_ns: 4_000_000,
        start_ns,
        stop_ns: start_ns + SEC,
    });
    tb.topo.sim.run_until(start_ns + 2 * SEC);

    let stats = tb.topo.sim.stats(flow);
    assert!(stats.sent_pkts > 200);
    assert_eq!(stats.delivered_pkts, stats.sent_pkts);
    for (i, node) in tb.topo.as_nodes.iter().enumerate() {
        let rs = tb.topo.sim.router_stats(*node).unwrap();
        if i == 2 {
            assert_eq!(rs.flyover, stats.sent_pkts, "reserved hop carries priority");
        } else {
            assert_eq!(rs.flyover, 0, "hop {i} must see only best effort");
            assert_eq!(rs.best_effort, stats.sent_pkts);
        }
        assert_eq!(rs.dropped, 0);
    }
}

#[test]
fn multiple_disjoint_hops() {
    let mut tb = Testbed::build(TestbedConfig { n_ases: 4, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut client = tb.new_client("partial2", 1_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    let grants = tb.acquire_hops(&mut client, spec, &[0, 3]).unwrap();
    assert_eq!(grants.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![0, 3]);

    let mut generator = tb
        .make_partially_reserved_generator(IsdAs::new(1, 0xa), IsdAs::new(2, 0xb), &grants)
        .unwrap();
    let mut pkt = generator.generate(&[0u8; 64], t0 * 1000).unwrap();
    // Walk the packet through all four routers directly.
    let expected = [true, false, false, true];
    for (i, node) in tb.topo.as_nodes.clone().iter().enumerate() {
        let v = tb.topo.sim.process_at_router(*node, &mut pkt, t0 * SEC).unwrap();
        assert_eq!(v.is_flyover(), expected[i], "hop {i}: {v:?}");
    }
}

#[test]
fn out_of_range_hop_rejected() {
    let mut tb = Testbed::build(TestbedConfig { n_ases: 2, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut client = tb.new_client("oops", 1_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    assert!(tb.acquire_hops(&mut client, spec, &[5]).is_err());
}
