//! Stateful property test of the control plane: under arbitrary sequences
//! of market operations, the system-wide invariants hold:
//!
//! 1. **Bandwidth-time conservation** — splitting, fusing, listing and
//!    buying never create or destroy reserved capacity; the sum of
//!    `bandwidth × duration` over all live assets equals what was issued
//!    minus what was destroyed by redemption.
//! 2. **Listing integrity** — every listing references a live asset
//!    escrowed under the market.
//! 3. **Monetary conservation** — MIST only moves between accounts, gas
//!    burn, and rebates; nothing is minted by trading.

use hummingbird_control::pki::TrustAnchors;
use hummingbird_control::{AsService, BandwidthAsset, ControlPlane, Direction, PurchaseSpec};
use hummingbird_crypto::sig::SecretKey;
use hummingbird_ledger::{Address, ObjectId, MIST_PER_SUI};
use hummingbird_wire::IsdAs;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HOUR: u64 = 3600;

/// Abstract operations the fuzzer sequences.
#[derive(Clone, Debug)]
enum Op {
    Issue { bw: u64, hours: u64 },
    SplitTime { asset_idx: usize, frac: u8 },
    SplitBandwidth { asset_idx: usize, frac: u8 },
    List { asset_idx: usize, price: u64 },
    Buy { listing_idx: usize, frac: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..100, 1u64..10).prop_map(|(bw, hours)| Op::Issue { bw: bw * 1000, hours }),
        (any::<usize>(), 1u8..4).prop_map(|(asset_idx, frac)| Op::SplitTime { asset_idx, frac }),
        (any::<usize>(), 1u8..4)
            .prop_map(|(asset_idx, frac)| Op::SplitBandwidth { asset_idx, frac }),
        (any::<usize>(), 1u64..5).prop_map(|(asset_idx, price)| Op::List { asset_idx, price }),
        (any::<usize>(), 1u8..4).prop_map(|(listing_idx, frac)| Op::Buy { listing_idx, frac }),
    ]
}

struct Harness {
    cp: ControlPlane,
    service: AsService,
    market: ObjectId,
    buyer: Address,
    /// Assets we believe are live and owned by the AS (tradable pool).
    owned_assets: Vec<ObjectId>,
    /// Issued bandwidth-time total (kbps·s).
    issued_bw_time: u128,
}

impl Harness {
    fn new() -> Self {
        let mut rng = StdRng::seed_from_u64(0xFEED);
        let as_id = IsdAs::new(1, 0xAB);
        let cert = SecretKey::from_seed(b"prop-market-as");
        let mut anchors = TrustAnchors::new();
        anchors.install(as_id, cert.public());
        let mut cp = ControlPlane::new(anchors);
        let mut service = AsService::new(as_id, cert, [3u8; 16], 1 << 16);
        cp.faucet(service.account, 100_000);
        service.register(&mut cp, &mut rng).unwrap();
        let market = cp.create_marketplace(service.account).unwrap().value;
        cp.register_seller(service.account, market).unwrap();
        let buyer = Address::from_label("prop-buyer");
        cp.faucet(buyer, 1_000_000);
        Harness { cp, service, market, buyer, owned_assets: Vec::new(), issued_bw_time: 0 }
    }

    /// Sum of bandwidth-time over every live asset on chain.
    fn live_bw_time(&self) -> u128 {
        self.cp
            .ledger
            .objects()
            .filter(|e| e.meta.type_tag == hummingbird_control::types::TAG_ASSET)
            .filter_map(|e| BandwidthAsset::decode(&e.data).ok())
            .map(|a| u128::from(a.bandwidth_kbps) * u128::from(a.duration()))
            .sum()
    }

    fn apply(&mut self, op: &Op) {
        let account = self.service.account;
        match op {
            Op::Issue { bw, hours } => {
                let asset = BandwidthAsset {
                    as_id: self.service.as_id,
                    bandwidth_kbps: *bw,
                    start_time: 0,
                    expiry_time: hours * HOUR,
                    interface: 1,
                    direction: Direction::Ingress,
                    time_granularity: 60,
                    min_bandwidth_kbps: 100,
                };
                if let Ok(rx) = self.service.issue_asset(&mut self.cp, asset) {
                    self.owned_assets.push(rx.value);
                    self.issued_bw_time += u128::from(*bw) * u128::from(hours * HOUR);
                }
            }
            Op::SplitTime { asset_idx, frac } => {
                if self.owned_assets.is_empty() {
                    return;
                }
                let id = self.owned_assets[asset_idx % self.owned_assets.len()];
                let Some(a) = self.cp.asset(id) else { return };
                let at = a.start_time
                    + (a.duration() * u64::from(*frac) / 4 / a.time_granularity)
                        * a.time_granularity;
                if let Ok(rx) = self.cp.split_time(account, id, at) {
                    self.owned_assets.push(rx.value.1);
                }
            }
            Op::SplitBandwidth { asset_idx, frac } => {
                if self.owned_assets.is_empty() {
                    return;
                }
                let id = self.owned_assets[asset_idx % self.owned_assets.len()];
                let Some(a) = self.cp.asset(id) else { return };
                let keep = a.bandwidth_kbps * u64::from(*frac) / 4;
                if let Ok(rx) = self.cp.split_bandwidth(account, id, keep) {
                    self.owned_assets.push(rx.value.1);
                }
            }
            Op::List { asset_idx, price } => {
                if self.owned_assets.is_empty() {
                    return;
                }
                let pos = asset_idx % self.owned_assets.len();
                let id = self.owned_assets[pos];
                if self.cp.create_listing(account, self.market, id, *price).is_ok() {
                    self.owned_assets.remove(pos);
                }
            }
            Op::Buy { listing_idx, frac } => {
                let listings = self.cp.listings(self.market);
                if listings.is_empty() {
                    return;
                }
                let (lid, _, a) = listings[listing_idx % listings.len()].clone();
                let dur_units = a.duration() / a.time_granularity;
                let take_units = (dur_units * u64::from(*frac) / 4).max(1).min(dur_units);
                let spec = PurchaseSpec {
                    start: a.start_time,
                    end: a.start_time + take_units * a.time_granularity,
                    bandwidth_kbps: a.bandwidth_kbps,
                };
                // May legitimately fail (e.g. remainder below minimum).
                let _ = self.cp.buy(self.buyer, self.market, lid, spec);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn market_invariants_hold(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut h = Harness::new();
        let initial_supply = h.cp.ledger.total_supply();
        let mut burned: i128 = 0;
        let tx_before = h.cp.ledger.tx_count();

        for op in &ops {
            let supply_before = h.cp.ledger.total_supply();
            h.apply(op);
            // Track net gas burn from supply movement (can be negative
            // for rebate-dominated transactions); trading itself
            // conserves value.
            let supply_after = h.cp.ledger.total_supply();
            burned += supply_before as i128 - supply_after as i128;

            // Invariant 1: bandwidth-time conservation.
            prop_assert_eq!(
                h.live_bw_time(),
                h.issued_bw_time,
                "bandwidth-time out of balance after {:?}",
                op
            );

            // Invariant 2: every listing references a live escrowed asset.
            for (lid, listing, _) in h.cp.listings(h.market) {
                let entry = h.cp.ledger.object(listing.asset);
                prop_assert!(entry.is_some(), "listing {lid:?} dangles");
            }
        }

        // Invariant 3: monetary conservation over the whole run.
        prop_assert_eq!(h.cp.ledger.total_supply() as i128 + burned, initial_supply as i128);
        // Sanity: something actually executed.
        prop_assert!(h.cp.ledger.tx_count() >= tx_before);
        // Gas stayed sane (< 1000 SUI burned across <= 40 ops).
        prop_assert!(burned.unsigned_abs() < 1000 * u128::from(MIST_PER_SUI));
    }
}
