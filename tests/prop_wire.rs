//! Property-based tests on the wire formats: parse/emit symmetry, codec
//! bounds, and path-reversal invariants under arbitrary inputs.

use hummingbird_wire::bwcls;
use hummingbird_wire::hopfield::{FlyoverHopField, HopField, HopFlags, InfoField};
use hummingbird_wire::meta::PathMetaHdr;
use hummingbird_wire::path::{HummingbirdPath, PathField};
use hummingbird_wire::{IsdAs, Packet, PacketBuilder};
use proptest::prelude::*;

fn arb_hop_field() -> impl Strategy<Value = HopField> {
    (any::<u8>(), any::<u16>(), any::<u16>(), any::<[u8; 6]>(), any::<bool>(), any::<bool>())
        .prop_map(|(exp, ig, eg, mac, ia, ea)| HopField {
            flags: HopFlags { flyover: false, ingress_alert: ia, egress_alert: ea },
            exp_time: exp,
            cons_ingress: ig,
            cons_egress: eg,
            mac,
        })
}

fn arb_flyover_field() -> impl Strategy<Value = FlyoverHopField> {
    (
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        any::<[u8; 6]>(),
        0u32..=hummingbird_crypto::RES_ID_MAX,
        0u16..=hummingbird_crypto::BW_ENC_MAX,
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(exp, ig, eg, mac, res_id, bw, off, dur)| FlyoverHopField {
            flags: HopFlags { flyover: true, ingress_alert: false, egress_alert: false },
            exp_time: exp,
            cons_ingress: ig,
            cons_egress: eg,
            agg_mac: mac,
            res_id,
            bw,
            res_start_offset: off,
            res_duration: dur,
        })
}

fn arb_path_field() -> impl Strategy<Value = PathField> {
    prop_oneof![
        arb_hop_field().prop_map(PathField::Hop),
        arb_flyover_field().prop_map(PathField::Flyover),
    ]
}

/// Paths with 1-3 segments, each of 1-6 hop fields.
fn arb_path() -> impl Strategy<Value = HummingbirdPath> {
    (
        prop::collection::vec(prop::collection::vec(arb_path_field(), 1..6), 1..4),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(segments, base_ts, millis_ts, counter)| {
            let mut seg_len = [0u8; 3];
            let mut info = Vec::new();
            let mut hops = Vec::new();
            for (i, seg) in segments.iter().enumerate() {
                let units: u16 = seg.iter().map(|h| u16::from(h.units())).sum();
                seg_len[i] = units as u8;
                info.push(InfoField {
                    peering: false,
                    cons_dir: i % 2 == 0,
                    seg_id: i as u16 * 7 + 1,
                    timestamp: base_ts,
                });
                hops.extend(seg.iter().copied());
            }
            HummingbirdPath {
                meta: PathMetaHdr { curr_inf: 0, curr_hf: 0, seg_len, base_ts, millis_ts, counter },
                info,
                hops,
            }
        })
}

proptest! {
    #[test]
    fn path_roundtrip(path in arb_path()) {
        prop_assume!(path.meta.total_hf_units() <= 255);
        let mut buf = vec![0u8; path.byte_len()];
        path.emit(&mut buf).unwrap();
        let parsed = HummingbirdPath::parse(&buf).unwrap();
        prop_assert_eq!(parsed, path);
    }

    #[test]
    fn packet_roundtrip(path in arb_path(), payload in prop::collection::vec(any::<u8>(), 0..1200)) {
        prop_assume!(path.meta.total_hf_units() <= 255);
        let builder = PacketBuilder::new(IsdAs::new(1, 2), IsdAs::new(3, 4));
        let pkt = builder.build(path, payload).unwrap();
        let bytes = pkt.to_bytes().unwrap();
        prop_assert_eq!(Packet::parse(&bytes).unwrap(), pkt);
    }

    #[test]
    fn truncated_packets_never_panic(path in arb_path(), cut in 0usize..200) {
        prop_assume!(path.meta.total_hf_units() <= 255);
        let builder = PacketBuilder::new(IsdAs::new(1, 2), IsdAs::new(3, 4));
        let pkt = builder.build(path, vec![0; 64]).unwrap();
        let bytes = pkt.to_bytes().unwrap();
        let cut = cut.min(bytes.len());
        // Must error or parse, never panic.
        let _ = Packet::parse(&bytes[..bytes.len() - cut]);
    }

    #[test]
    fn corrupted_bytes_never_panic(path in arb_path(), idx in 0usize..100, bit in 0u8..8) {
        prop_assume!(path.meta.total_hf_units() <= 255);
        let builder = PacketBuilder::new(IsdAs::new(1, 2), IsdAs::new(3, 4));
        let pkt = builder.build(path, vec![0; 32]).unwrap();
        let mut bytes = pkt.to_bytes().unwrap();
        let i = idx % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = Packet::parse(&bytes);
    }

    #[test]
    fn reversal_preserves_hop_count_and_validates(path in arb_path()) {
        prop_assume!(path.meta.total_hf_units() <= 255);
        let rev = path.reversed().unwrap();
        prop_assert_eq!(rev.hops.len(), path.hops.len());
        prop_assert!(rev.validate().is_ok());
        prop_assert!(rev.hops.iter().all(|h| !h.is_flyover()));
        // Double reversal restores hop interface order.
        let rev2 = rev.reversed().unwrap();
        let original: Vec<(u16, u16)> =
            path.hops.iter().map(|h| (h.cons_ingress(), h.cons_egress())).collect();
        let restored: Vec<(u16, u16)> =
            rev2.hops.iter().map(|h| (h.cons_ingress(), h.cons_egress())).collect();
        prop_assert_eq!(original, restored);
    }

    #[test]
    fn bw_codec_floor_ceil_bracket_value(value in 0u64..=bwcls::VALUE_MAX) {
        let floor = bwcls::decode(bwcls::encode_floor(value).unwrap());
        prop_assert!(floor <= value);
        if let Some(ceil_enc) = bwcls::encode_ceil(value) {
            let ceil = bwcls::decode(ceil_enc);
            prop_assert!(ceil >= value);
            // Floor and ceil are adjacent representable values.
            prop_assert!(bwcls::encode_floor(value).unwrap().abs_diff(ceil_enc) <= 1);
        }
    }

    #[test]
    fn bw_codec_relative_error(value in 32u64..=bwcls::VALUE_MAX) {
        let dec = bwcls::decode(bwcls::encode_floor(value).unwrap());
        // Spacing within an octave is 1/32.
        prop_assert!(value - dec <= value / 32);
    }

    #[test]
    fn meta_hdr_roundtrip(curr_inf in 0u8..3, curr_hf: u8, s0 in 1u8..128, s1 in 0u8..128,
                          base_ts: u32, millis: u16, counter: u16) {
        let seg_len = [s0, s1, 0];
        let hdr = PathMetaHdr { curr_inf, curr_hf, seg_len, base_ts, millis_ts: millis, counter };
        let mut buf = [0u8; 12];
        if hdr.emit(&mut buf).is_ok() {
            prop_assert_eq!(PathMetaHdr::parse(&buf).unwrap(), hdr);
        }
    }
}
