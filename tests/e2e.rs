//! Cross-crate end-to-end integration: the full reservation lifecycle from
//! market issuance through packet forwarding, exercised via the umbrella
//! crate's public API only.

use hummingbird::testbed::{Testbed, TestbedConfig};
use hummingbird::{ExecPath, IsdAs, PurchaseSpec, ReservationBundle};

const SEC: u64 = 1_000_000_000;

#[test]
fn sixteen_hop_path_acquisition_and_forwarding() {
    // The longest path the paper evaluates (Table 1, Fig. 4: 16 hops).
    let mut tb = Testbed::build(TestbedConfig {
        n_ases: 16,
        link: hummingbird::LinkSpec { bandwidth_bps: 100_000_000, ..Default::default() },
        ..Default::default()
    })
    .unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut client = tb.new_client("alice", 10_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    let grants = tb.acquire_path(&mut client, spec).unwrap();
    assert_eq!(grants.len(), 16);

    // All 16 flyovers verify along the chain.
    let generator =
        tb.make_reserved_generator(IsdAs::new(1, 0xa), IsdAs::new(2, 0xb), &grants).unwrap();
    let entry = tb.topo.as_nodes[0];
    let start_ns = t0 * SEC;
    let flow = tb.topo.sim.add_flow(hummingbird::netsim::Flow {
        generator,
        entry,
        payload_len: 500,
        interval_ns: 4_000_000,
        start_ns,
        stop_ns: start_ns + SEC,
    });
    tb.topo.sim.run_until(start_ns + 2 * SEC);
    let s = tb.topo.sim.stats(flow);
    assert!(s.sent_pkts >= 200);
    assert_eq!(s.delivered_pkts, s.sent_pkts);
    for node in &tb.topo.as_nodes {
        assert_eq!(tb.topo.sim.router_stats(*node).unwrap().dropped, 0);
    }
}

#[test]
fn purchase_needs_consensus_delivery_rides_fast_path() {
    let mut tb = Testbed::build(TestbedConfig::default()).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();

    // Direct calls so we can inspect the execution path per transaction.
    let mut client = tb.new_client("alice", 1_000);
    let listings = tb.control.listings(tb.market);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    let hops: Vec<_> = (0..tb.cfg.n_ases)
        .map(|i| {
            let (ing_if, eg_if) = hummingbird::LinearTopology::interfaces(tb.cfg.n_ases, i);
            let find = |interface: u16, dir: hummingbird::Direction| {
                listings
                    .iter()
                    .find(|(_, _, a)| {
                        a.as_id == Testbed::as_id(i)
                            && a.interface == interface
                            && a.direction == dir
                    })
                    .unwrap()
                    .0
            };
            (
                find(ing_if, hummingbird::Direction::Ingress),
                find(eg_if, hummingbird::Direction::Egress),
                spec,
            )
        })
        .collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let rx = client.buy_and_redeem_path(&mut tb.control, tb.market, &hops, &mut rng).unwrap();
    assert_eq!(rx.path, ExecPath::Consensus, "market purchase touches a shared object");

    // Deliveries use owned objects only → fast path (paper §6.1).
    let pending = tb.control.pending_requests(tb.services[0].account);
    let (req_id, req) = pending[0].clone();
    let delivery = hummingbird_control::EncryptedReservation {
        as_id: Testbed::as_id(0),
        request: req_id,
        sealed: hummingbird_crypto::sealed::seal(&req.ephemeral_pk, b"test", &mut rng),
    };
    let rx = tb.control.deliver_reservation(tb.services[0].account, req_id, delivery).unwrap();
    assert_eq!(rx.path, ExecPath::FastPath);
}

#[test]
fn gas_cost_scales_linearly_with_hops() {
    // The Table 1 shape: atomic buy-and-redeem cost grows linearly in the
    // path length (≈0.031 SUI per hop at the paper's prices).
    let mut per_hop_costs = Vec::new();
    for hops in [1usize, 2, 4, 8] {
        let mut tb = Testbed::build(TestbedConfig { n_ases: hops, ..Default::default() }).unwrap();
        let t0 = tb.cfg.start_unix_s;
        tb.stock_market(100_000, t0 - 3600, t0 + 36_000, 60, 100).unwrap();
        let mut client = tb.new_client("alice", 10_000);
        let listings = tb.control.listings(tb.market);
        // Worst-case split on every asset: interior window + partial bw.
        let spec = PurchaseSpec { start: t0, end: t0 + 600, bandwidth_kbps: 4_000 };
        let hop_list: Vec<_> = (0..hops)
            .map(|i| {
                let (ing_if, eg_if) = hummingbird::LinearTopology::interfaces(hops, i);
                let find = |interface: u16, dir: hummingbird::Direction| {
                    listings
                        .iter()
                        .find(|(_, _, a)| {
                            a.as_id == Testbed::as_id(i)
                                && a.interface == interface
                                && a.direction == dir
                        })
                        .unwrap()
                        .0
                };
                (
                    find(ing_if, hummingbird::Direction::Ingress),
                    find(eg_if, hummingbird::Direction::Egress),
                    spec,
                )
            })
            .collect();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(13);
        let rx =
            client.buy_and_redeem_path(&mut tb.control, tb.market, &hop_list, &mut rng).unwrap();
        let total_sui = rx.gas.total_sui();
        assert!(total_sui > 0.0);
        per_hop_costs.push(total_sui / hops as f64);
    }
    // Linearity: per-hop cost roughly constant (within 2× across sizes —
    // computation bucketing adds small steps).
    let min = per_hop_costs.iter().cloned().fold(f64::MAX, f64::min);
    let max = per_hop_costs.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 2.0, "per-hop cost should be ~constant: {per_hop_costs:?}");
    // Magnitude: same order as the paper's 0.031 SUI per hop.
    assert!(
        (0.003..0.3).contains(&per_hop_costs[0]),
        "per-hop cost {} SUI out of the expected regime",
        per_hop_costs[0]
    );
}

#[test]
fn bundle_transfer_enables_reverse_traffic() {
    let mut tb = Testbed::build(TestbedConfig { n_ases: 2, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let mut alice = tb.new_client("alice", 1_000);
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 2_000 };
    let grants = tb.acquire_path(&mut alice, spec).unwrap();

    // Alice ships credentials to Bob; Bob's packets verify at the routers.
    let wire_bundle = ReservationBundle::from_grants(&grants).encode();
    let bob_grants = ReservationBundle::decode(&wire_bundle).unwrap().into_grants();
    let mut bob_gen =
        tb.make_reserved_generator(IsdAs::new(7, 0x77), IsdAs::new(2, 0xb), &bob_grants).unwrap();
    let mut pkt = bob_gen.generate(&[0u8; 64], t0 * 1000).unwrap();
    let v = tb.topo.sim.process_at_router(tb.topo.as_nodes[0], &mut pkt, t0 * SEC).unwrap();
    assert!(v.is_flyover());
}

#[test]
fn multiple_clients_share_the_market_fairly() {
    let mut tb = Testbed::build(TestbedConfig { n_ases: 2, ..Default::default() }).unwrap();
    let t0 = tb.cfg.start_unix_s;
    tb.stock_market(100_000, t0 - 60, t0 + 3540, 60, 100).unwrap();
    let spec = PurchaseSpec { start: t0 - 60, end: t0 + 540, bandwidth_kbps: 10_000 };
    // Ten clients buy 10 Mbps each out of the 100 Mbps listings.
    let mut all_res_ids = Vec::new();
    for i in 0..10 {
        let mut c = tb.new_client(&format!("client-{i}"), 10_000);
        let grants = tb.acquire_path(&mut c, spec).unwrap();
        all_res_ids.push(grants[0].res_info.res_id);
    }
    // Everyone got distinct concurrent ResIDs on hop 0.
    let mut dedup = all_res_ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), 10, "{all_res_ids:?}");
    // The market is now out of bandwidth at this window: an 11th client
    // cannot buy (all remaining pieces are too small).
    let mut late = tb.new_client("late", 10_000);
    assert!(tb.acquire_path(&mut late, spec).is_err());
}
