//! Property tests for the unified `Datapath` API:
//!
//! 1. **Batch ≡ sequential** — for every engine, `process_batch` verdicts
//!    are element-wise identical to sequential `process` calls on an
//!    identically-configured engine (the contract that lets later PRs
//!    amortize work across a burst without changing semantics).
//! 2. **Owned ≡ zero-copy** — a `BorderRouter` reaches the same verdict
//!    whether a packet's bytes are used directly, round-tripped through
//!    the owned `Packet` repr, or wrapped in a checked zero-copy
//!    `PacketView` first.

use hummingbird::dataplane::{
    forge_path, BeaconHop, Datapath, DatapathBuilder, PacketBuf, RouterConfig, SourceGenerator,
    SourceReservation,
};
use hummingbird::{IsdAs, ResInfo, SecretValue};
use hummingbird_baselines::{
    slot_of, DrKeyDatapath, EpicDatapath, EpicSender, HeliaDatapath, HeliaSender,
};
use hummingbird_wire::scion_mac::HopMacKey;
use hummingbird_wire::{Packet, PacketView};
use proptest::prelude::*;

const NOW_S: u64 = 1_700_000_096; // slot-aligned (divisible by 16)
const NOW_MS: u64 = NOW_S * 1000;
const NOW_NS: u64 = NOW_S * 1_000_000_000;

fn hop_key(i: usize) -> HopMacKey {
    HopMacKey::new([0x10 + i as u8; 16])
}

fn sv(i: usize) -> SecretValue {
    SecretValue::new([0x60 + i as u8; 16])
}

fn interfaces(n: usize, i: usize) -> (u16, u16) {
    (if i == 0 { 0 } else { 2 * i as u16 }, if i == n - 1 { 0 } else { 2 * i as u16 + 1 })
}

/// A mixed workload: `n_hops`-hop packets, hop 0 reserved on a subset,
/// with a per-packet payload size and a corrupted-byte option so batches
/// mix Flyover, BestEffort and Drop verdicts.
fn workload(n_hops: usize, specs: &[(u16, bool, bool)]) -> Vec<Vec<u8>> {
    let hops: Vec<BeaconHop> = (0..n_hops)
        .map(|i| {
            let (cons_ingress, cons_egress) = interfaces(n_hops, i);
            BeaconHop { key: hop_key(i), cons_ingress, cons_egress }
        })
        .collect();
    let path = forge_path(&hops, NOW_S as u32 - 100, 0x1234);
    let (ing, eg) = interfaces(n_hops, 0);
    let res_info = ResInfo {
        ingress: ing,
        egress: eg,
        res_id: 9,
        bw_encoded: 700,
        res_start: NOW_S as u32 - 50,
        duration: 600,
    };
    let key = sv(0).derive_key(&res_info);
    let mut reserved = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path.clone());
    reserved.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
    let mut plain = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);

    specs
        .iter()
        .enumerate()
        .map(|(i, &(payload, with_res, corrupt))| {
            let generator = if with_res { &mut reserved } else { &mut plain };
            let mut bytes =
                generator.generate(&vec![0u8; usize::from(payload)], NOW_MS + i as u64).unwrap();
            if corrupt {
                let idx = 56 + (i % 12);
                bytes[idx] ^= 0x40;
            }
            bytes
        })
        .collect()
}

fn router() -> DatapathBuilder {
    DatapathBuilder::new(sv(0), hop_key(0))
}

/// An EPIC-stamped mixed workload from up to three source ASes: per spec
/// `(src_choice, payload, stale, corrupt)`, a packet authenticated under
/// the verifying AS's EPIC key for that source — optionally stamped 10 s
/// in the past (→ the strict-freshness drop) or corrupted (→ BadMac) —
/// so bursts mix BestEffort and both Drop reasons across sources.
fn epic_workload(specs: &[(u8, u16, bool, bool)]) -> Vec<Vec<u8>> {
    let hops = vec![
        BeaconHop { key: hop_key(0), cons_ingress: 0, cons_egress: 1 },
        BeaconHop { key: hop_key(1), cons_ingress: 2, cons_egress: 0 },
    ];
    let path = forge_path(&hops, NOW_S as u32 - 100, 0x1234);
    let mut issuer = EpicDatapath::new([0xB5; 16], hop_key(0), RouterConfig::default());
    let mut senders: Vec<EpicSender> = (0..3u64)
        .map(|i| {
            let src = IsdAs::new(1, 0x10 + i);
            let key = issuer.auth_key(src, [0, 0, 0, 1], NOW_S);
            let mut sender = EpicSender::new(src, IsdAs::new(2, 0x20), path.clone());
            sender.attach_auth_key(0, 0, 1, key, NOW_S).unwrap();
            sender
        })
        .collect();
    specs
        .iter()
        .enumerate()
        .map(|(i, &(src_choice, payload, stale, corrupt))| {
            let at = if stale { NOW_MS - 10_000 } else { NOW_MS } + i as u64;
            let sender = &mut senders[usize::from(src_choice) % 3];
            let mut bytes = sender.generate(&vec![0u8; usize::from(payload)], at).unwrap();
            if corrupt {
                let idx = 56 + (i % 12);
                bytes[idx] ^= 0x40;
            }
            bytes
        })
        .collect()
}

/// Asserts batch ≡ sequential on two identically-configured engines.
fn assert_batch_matches_sequential(
    mut batch_engine: Box<dyn Datapath + Send>,
    mut seq_engine: Box<dyn Datapath + Send>,
    packets: Vec<Vec<u8>>,
) -> Result<(), String> {
    let sequential: Vec<_> =
        packets.iter().map(|p| seq_engine.process(&mut p.clone(), NOW_NS)).collect();
    let mut bufs: Vec<PacketBuf> = packets.into_iter().map(PacketBuf::new).collect();
    let mut batched = Vec::new();
    batch_engine.process_batch(&mut bufs, NOW_NS, &mut batched);
    prop_assert_eq!(&batched, &sequential, "batch verdicts diverge from sequential");
    prop_assert_eq!(batch_engine.stats(), seq_engine.stats(), "stats diverge");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `process_batch` ≡ sequential `process` for the Hummingbird router,
    /// across mixed flyover/best-effort/corrupted bursts — including the
    /// stateful stages (policing shares one token bucket across the
    /// burst; duplicate suppression sees the same stream).
    #[test]
    fn border_router_batch_equals_sequential(
        n_hops in 1usize..5,
        specs in prop::collection::vec((0u16..600, any::<bool>(), any::<bool>()), 1..24),
        dup in any::<bool>(),
    ) {
        let packets = workload(n_hops, &specs);
        let make = || router().duplicate_suppression(dup).build_boxed();
        assert_batch_matches_sequential(make(), make(), packets)?;
    }

    /// The same batch contract holds for the baseline engines (for EPIC
    /// this drives the real three-sweep batched key derivation against
    /// foreign-keyed flyover packets: fresh ones derive and fail the MAC,
    /// stale ones drop at the pass-1 freshness gate).
    #[test]
    fn baseline_engines_batch_equals_sequential(
        specs in prop::collection::vec((0u16..400, any::<bool>(), any::<bool>()), 1..16),
    ) {
        let packets = workload(2, &specs);
        let helia = || -> Box<dyn Datapath + Send> {
            Box::new(HeliaDatapath::new([0xB5; 16], hop_key(0), RouterConfig::default()))
        };
        assert_batch_matches_sequential(helia(), helia(), packets.clone())?;
        let drkey = || -> Box<dyn Datapath + Send> {
            Box::new(DrKeyDatapath::new([0xB5; 16], hop_key(0)))
        };
        assert_batch_matches_sequential(drkey(), drkey(), packets.clone())?;
        let epic = || -> Box<dyn Datapath + Send> {
            Box::new(EpicDatapath::new([0xB5; 16], hop_key(0), RouterConfig::default()))
        };
        assert_batch_matches_sequential(epic(), epic(), packets)?;
    }

    /// EPIC-stamped traffic from several sources: batch ≡ sequential with
    /// verdicts that actually validate (plus stale/corrupt packets mixed
    /// in), and cached ≡ uncached key derivation through both paths.
    #[test]
    fn epic_stamped_batch_and_cache_equivalence(
        specs in prop::collection::vec((0u8..3, 0u16..400, any::<bool>(), any::<bool>()), 1..16),
        dup in any::<bool>(),
    ) {
        let packets = epic_workload(&specs);
        let make = |cache_slots: u32| -> Box<dyn Datapath + Send> {
            let cfg = RouterConfig {
                duplicate_suppression: dup,
                auth_key_cache_slots: cache_slots,
                ..RouterConfig::default()
            };
            Box::new(EpicDatapath::new([0xB5; 16], hop_key(0), cfg))
        };
        let mut probe = make(0);
        let fresh = epic_workload(&[(0, 64, false, false)]);
        let v = probe.process(&mut fresh[0].clone(), NOW_NS);
        prop_assert!(matches!(v, hummingbird::dataplane::Verdict::BestEffort { .. }),
            "stamped packet must validate best-effort: {:?}", v);

        // Batch ≡ sequential on the default (cached) configuration.
        assert_batch_matches_sequential(
            make(RouterConfig::default().auth_key_cache_slots),
            make(RouterConfig::default().auth_key_cache_slots),
            packets.clone(),
        )?;

        // Cached ≡ uncached: verdicts agree packet by packet, and core
        // stats agree once the cache counters are masked off.
        let mut cached = make(RouterConfig::default().auth_key_cache_slots);
        let mut uncached = make(0);
        for pkt in &packets {
            let a = cached.process(&mut pkt.clone(), NOW_NS);
            let b = uncached.process(&mut pkt.clone(), NOW_NS);
            prop_assert_eq!(a, b, "cached EPIC verdict diverged");
        }
        let mut cached_stats = cached.stats();
        let uncached_stats = uncached.stats();
        prop_assert_eq!(uncached_stats.key_cache_hits, 0, "disabled cache must not count");
        prop_assert_eq!(uncached_stats.key_cache_misses, 0, "disabled cache must not count");
        cached_stats.key_cache_hits = 0;
        cached_stats.key_cache_misses = 0;
        prop_assert_eq!(cached_stats, uncached_stats, "core stats diverged");
    }

    /// Helia-stamped packets also verify batch ≡ sequential with verdicts
    /// that actually reach the priority class.
    #[test]
    fn helia_stamped_batch_equals_sequential(
        payloads in prop::collection::vec(0u16..400, 1..12),
    ) {
        let hops = vec![
            BeaconHop { key: hop_key(0), cons_ingress: 0, cons_egress: 1 },
            BeaconHop { key: hop_key(1), cons_ingress: 2, cons_egress: 0 },
        ];
        let path = forge_path(&hops, NOW_S as u32 - 100, 0x1234);
        let src = IsdAs::new(1, 0x10);
        let issuer = HeliaDatapath::new([0xB5; 16], hop_key(0), RouterConfig::default());
        let grant = issuer.issue_grant(src, slot_of(NOW_S), 1, 1_000_000, 0, 1).unwrap();
        let mut sender = HeliaSender::new(src, IsdAs::new(2, 0x20), path);
        sender.attach_grant(0, &grant).unwrap();
        let packets: Vec<Vec<u8>> = payloads
            .iter()
            .enumerate()
            .map(|(i, &p)| sender.generate(&vec![0u8; usize::from(p)], NOW_MS + i as u64).unwrap())
            .collect();
        let make = || -> Box<dyn Datapath + Send> {
            Box::new(HeliaDatapath::new([0xB5; 16], hop_key(0), RouterConfig::default()))
        };
        let mut probe = make();
        let v = probe.process(&mut packets[0].clone(), NOW_NS);
        prop_assert!(v.is_flyover(), "stamped packet must prioritize: {:?}", v);
        assert_batch_matches_sequential(make(), make(), packets)?;
    }

    /// AuthKey-cache ≡ uncached: a router resolving `A_i` through the
    /// per-engine key cache reaches identical verdicts and core stats to
    /// one that re-derives (and re-expands) per packet, through both the
    /// sequential and the batch path.
    #[test]
    fn cached_key_derivation_equals_uncached(
        n_hops in 1usize..5,
        specs in prop::collection::vec((0u16..600, any::<bool>(), any::<bool>()), 1..24),
    ) {
        let packets = workload(n_hops, &specs);
        let mut cached = router().build_boxed();
        let mut uncached = router().auth_key_cache(0).build_boxed();
        for pkt in &packets {
            let a = cached.process(&mut pkt.clone(), NOW_NS);
            let b = uncached.process(&mut pkt.clone(), NOW_NS);
            prop_assert_eq!(a, b, "cached verdict diverged (sequential)");
        }
        let mut cached_stats = cached.stats();
        let uncached_stats = uncached.stats();
        prop_assert_eq!(uncached_stats.key_cache_hits, 0, "disabled cache must not count");
        prop_assert_eq!(uncached_stats.key_cache_misses, 0, "disabled cache must not count");
        // The workload repeats one reservation, so any second flyover
        // lookup is a hit; core counters agree once cache fields align.
        cached_stats.key_cache_hits = 0;
        cached_stats.key_cache_misses = 0;
        prop_assert_eq!(cached_stats, uncached_stats, "core stats diverged");

        // Batch path: same equivalence, and batch ≡ sequential counters
        // on the cached engine (burst repeats count as hits).
        let mut cached_batch = router().build_boxed();
        let mut uncached_batch = router().auth_key_cache(0).build_boxed();
        let mut bufs_a: Vec<PacketBuf> = packets.iter().cloned().map(PacketBuf::new).collect();
        let mut bufs_b: Vec<PacketBuf> = packets.into_iter().map(PacketBuf::new).collect();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        cached_batch.process_batch(&mut bufs_a, NOW_NS, &mut out_a);
        uncached_batch.process_batch(&mut bufs_b, NOW_NS, &mut out_b);
        prop_assert_eq!(&out_a, &out_b, "cached verdict diverged (batch)");
        prop_assert_eq!(cached_batch.stats(), cached.stats(),
            "batch cache counters diverged from sequential");
    }

    /// A `BorderRouter` verdict is identical whether the packet bytes are
    /// processed directly, reconstructed through the owned `Packet` repr,
    /// or passed through a checked zero-copy `PacketView`.
    #[test]
    fn owned_and_view_paths_agree(
        n_hops in 1usize..5,
        payload in 0u16..600,
        with_res in any::<bool>(),
        corrupt in any::<bool>(),
    ) {
        let packets = workload(n_hops, &[(payload, with_res, corrupt)]);
        let direct_bytes = packets[0].clone();

        // Owned path: parse into the Repr types and re-serialize.
        let owned_bytes = match Packet::parse(&direct_bytes) {
            Ok(pkt) => pkt.to_bytes().unwrap(),
            Err(_) => direct_bytes.clone(), // unparseable stays as-is
        };
        // Zero-copy path: checked view over the same buffer.
        let view_bytes = match PacketView::new_checked(direct_bytes.clone()) {
            Ok(view) => view.into_inner(),
            Err(_) => direct_bytes.clone(),
        };

        let mut verdicts = Vec::new();
        for bytes in [direct_bytes, owned_bytes, view_bytes] {
            let mut engine = router().build();
            verdicts.push(engine.process(&mut bytes.clone(), NOW_NS));
        }
        prop_assert_eq!(verdicts[0], verdicts[1], "owned Packet path diverged");
        prop_assert_eq!(verdicts[0], verdicts[2], "PacketView path diverged");
    }
}
