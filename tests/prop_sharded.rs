//! Property tests for the sharded worker-ring runtime:
//!
//! 1. **Sharded ≡ single** — for duplicate-free traffic, a
//!    `ShardedRouter` over N identically-keyed engines produces verdicts
//!    and aggregate stats element-wise identical to one engine, for any
//!    shard count, through both the per-packet and the batch path.
//! 2. **ResID ownership** — a reservation's policer state never splits
//!    across shards: all traffic on one ResID (whatever its source,
//!    timestamps, or hash-collision-crafted siblings) lands on exactly
//!    one shard, so overuse demotion matches the single-engine count.
//! 3. **Replay co-location** — exact replays are bit-identical, steer to
//!    the same shard, and are caught by that shard's duplicate filter
//!    exactly as a single engine would.
//! 4. **Packet conservation** — the threaded runtime processes every
//!    dispatched packet exactly once, in both clone and sharded modes.
//! 5. **Multi-queue ≡ dispatcher ≡ single** — the per-shard rx-queue
//!    layout conserves packets and produces the same aggregate verdict
//!    counts as the legacy single-dispatcher layout and as one shard,
//!    for every shard count and wait strategy.
//! 6. **Runtime determinism** — two runs with one configuration are
//!    bit-identical per shard, and the wait strategy never changes the
//!    results, with the tx path off or on.

use hummingbird::dataplane::runtime::{
    run_to_completion, RuntimeConfig, RuntimeMode, RxMode, ShardMap, ShardedRouter, Steering,
    WaitStrategy,
};
use hummingbird::dataplane::{
    forge_path, BeaconHop, Datapath, DatapathBuilder, PacketBuf, RouterConfig, SourceGenerator,
    SourceReservation,
};
use hummingbird::{IsdAs, ResInfo, SecretValue};
use hummingbird_baselines::{EpicDatapath, EpicSender};
use hummingbird_wire::scion_mac::HopMacKey;
use proptest::prelude::*;

const NOW_S: u64 = 1_700_000_096;
const NOW_MS: u64 = NOW_S * 1000;
const NOW_NS: u64 = NOW_S * 1_000_000_000;
const SLOTS: u32 = 100_000; // RouterConfig::default().policer_slots

fn hop_key() -> HopMacKey {
    HopMacKey::new([0x10; 16])
}

fn sv() -> SecretValue {
    SecretValue::new([0x60; 16])
}

fn make_engine(dup: bool) -> Box<dyn Datapath + Send> {
    DatapathBuilder::new(sv(), hop_key()).duplicate_suppression(dup).build_boxed()
}

fn make_sharded(shards: usize, dup: bool) -> ShardedRouter {
    ShardedRouter::from_fn(shards, SLOTS, |_| make_engine(dup))
}

/// ResIDs spread across the slot space so contiguous shard ranges each
/// own some — including range-boundary IDs, the adversarial case for
/// ownership.
const RES_IDS: [u32; 6] = [1, 24_999, 25_000, 50_000, 75_001, 99_999];

/// A generator over a 1-hop path with a reservation on `res_id` at a
/// bandwidth class small enough that sustained traffic trips the policer.
fn generator(res_id: u32, bw_encoded: u16) -> SourceGenerator {
    let hops = vec![BeaconHop { key: hop_key(), cons_ingress: 0, cons_egress: 0 }];
    let path = forge_path(&hops, NOW_S as u32 - 100, 0x1234);
    let mut generator = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
    let res_info = ResInfo {
        ingress: 0,
        egress: 0,
        res_id,
        bw_encoded,
        res_start: NOW_S as u32 - 50,
        duration: 600,
    };
    let key = sv().derive_key(&res_info);
    generator.attach_reservation(0, SourceReservation { res_info, key }).unwrap();
    generator
}

/// A duplicate-free mixed workload: per spec `(res_choice, payload,
/// corrupt)`, a packet on `RES_IDS[res_choice % 6]` (or plain when
/// `res_choice == 6`), each stamped at a distinct millisecond so no two
/// packets share a duplicate-filter identity.
fn workload(specs: &[(u8, u16, bool)]) -> Vec<Vec<u8>> {
    let mut reserved: Vec<SourceGenerator> = RES_IDS.iter().map(|&r| generator(r, 700)).collect();
    let hops = vec![BeaconHop { key: hop_key(), cons_ingress: 0, cons_egress: 0 }];
    let path = forge_path(&hops, NOW_S as u32 - 100, 0x1234);
    let mut plain = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
    specs
        .iter()
        .enumerate()
        .map(|(i, &(res_choice, payload, corrupt))| {
            let payload = vec![0u8; usize::from(payload)];
            let at = NOW_MS + i as u64; // unique ms → duplicate-free
            let mut bytes = if usize::from(res_choice) % 7 == 6 {
                plain.generate(&payload, at).unwrap()
            } else {
                reserved[usize::from(res_choice) % 7 % 6].generate(&payload, at).unwrap()
            };
            if corrupt {
                let idx = 56 + (i % 12);
                bytes[idx] ^= 0x40;
            }
            bytes
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded ≡ single: verdicts and aggregate stats match for any
    /// shard count on duplicate-free mixed traffic (per-packet path).
    #[test]
    fn sharded_equals_single_engine(
        shards in 1usize..6,
        specs in prop::collection::vec((any::<u8>(), 0u16..600, any::<bool>()), 1..24),
        dup in any::<bool>(),
    ) {
        let packets = workload(&specs);
        let mut single = make_engine(dup);
        let mut sharded = make_sharded(shards, dup);
        for pkt in &packets {
            let a = single.process(&mut pkt.clone(), NOW_NS);
            let b = sharded.process(&mut pkt.clone(), NOW_NS);
            prop_assert_eq!(a, b, "sharded verdict diverged");
        }
        prop_assert_eq!(single.stats(), sharded.stats(), "aggregate stats diverged");
    }

    /// The same equivalence through `process_batch` (which regroups the
    /// burst into per-shard runs and drives each engine's batch path).
    #[test]
    fn sharded_batch_equals_single_batch(
        shards in 1usize..6,
        specs in prop::collection::vec((any::<u8>(), 0u16..600, any::<bool>()), 1..24),
    ) {
        let packets = workload(&specs);
        let mut single = make_engine(false);
        let mut sharded = make_sharded(shards, false);
        let mut bufs_a: Vec<PacketBuf> = packets.iter().cloned().map(PacketBuf::new).collect();
        let mut bufs_b: Vec<PacketBuf> = packets.into_iter().map(PacketBuf::new).collect();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        single.process_batch(&mut bufs_a, NOW_NS, &mut out_a);
        sharded.process_batch(&mut bufs_b, NOW_NS, &mut out_b);
        prop_assert_eq!(&out_a, &out_b, "batch verdicts diverged");
        prop_assert_eq!(single.stats(), sharded.stats(), "batch stats diverged");
    }

    /// ResID ownership: every packet of one reservation — across
    /// payloads, timestamps and source hosts — is processed by exactly
    /// one shard, and the policer's overuse demotions match a single
    /// engine exactly (the state never splits).
    #[test]
    fn res_id_policer_state_never_splits(
        shards in 2usize..6,
        res_choice in 0usize..6,
        n_pkts in 8usize..40,
    ) {
        let res_id = RES_IDS[res_choice];
        // 240 kbps class: one big packet fills the 50 ms burst budget, so
        // a sustained burst must be demoted — visible policer state.
        let mut generator = generator(res_id, 124);
        let packets: Vec<Vec<u8>> = (0..n_pkts)
            .map(|i| generator.generate(&[0u8; 1200], NOW_MS + i as u64).unwrap())
            .collect();
        let mut single = make_engine(false);
        let mut sharded = make_sharded(shards, false);
        for pkt in &packets {
            let a = single.process(&mut pkt.clone(), NOW_NS);
            let b = sharded.process(&mut pkt.clone(), NOW_NS);
            prop_assert_eq!(a, b, "policing verdict diverged");
        }
        let s = sharded.stats();
        prop_assert_eq!(single.stats(), s);
        prop_assert!(s.demoted_overuse > 0, "workload must trip the policer");
        // All packets of this ResID landed on one shard.
        let active: Vec<usize> = sharded
            .shard_stats()
            .iter()
            .enumerate()
            .filter(|(_, st)| st.processed > 0)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(active.len(), 1, "ResID {} split across shards {:?}", res_id, active);
        let map = ShardMap::new(shards, SLOTS, Steering::ByReservation);
        prop_assert_eq!(active[0], map.shard_of_res_id(res_id));
        prop_assert!(map.res_id_range(active[0]).contains(&res_id));
    }

    /// Key-cache correctness across shard steering: per-shard `AuthKey`
    /// caches behave exactly like one engine-wide cache, because every
    /// reservation steers to one shard — aggregate hit/miss counters
    /// match a single engine, and revisiting the same flows adds hits
    /// but never misses (each revisit lands on the shard that already
    /// holds the expanded schedule).
    #[test]
    fn key_cache_counters_survive_sharding(
        shards in 1usize..6,
        specs in prop::collection::vec((any::<u8>(), 0u16..400, any::<bool>()), 1..24),
    ) {
        let packets = workload(&specs);
        let mut single = make_engine(false);
        let mut sharded = make_sharded(shards, false);
        for pkt in &packets {
            single.process(&mut pkt.clone(), NOW_NS);
            sharded.process(&mut pkt.clone(), NOW_NS);
        }
        let (s, sh) = (single.stats(), sharded.stats());
        prop_assert_eq!(s.key_cache_hits, sh.key_cache_hits, "aggregate hits diverged");
        prop_assert_eq!(s.key_cache_misses, sh.key_cache_misses, "aggregate misses diverged");
        // A second pass over the identical flows derives nothing new,
        // wherever the packets steer.
        let misses_after_first = sh.key_cache_misses;
        for pkt in &packets {
            sharded.process(&mut pkt.clone(), NOW_NS);
        }
        prop_assert_eq!(
            sharded.stats().key_cache_misses, misses_after_first,
            "revisit missed: a flow reached a shard without its key"
        );
    }

    /// Exact replays steer to the owning shard and are dropped by its
    /// duplicate filter exactly as a single engine drops them.
    #[test]
    fn replays_colocate_with_their_original(
        shards in 2usize..6,
        res_choice in 0usize..6,
        copies in 1usize..5,
    ) {
        let mut generator = generator(RES_IDS[res_choice], 700);
        let original = generator.generate(&[0u8; 300], NOW_MS).unwrap();
        let mut single = make_engine(true);
        let mut sharded = make_sharded(shards, true);
        for i in 0..=copies {
            let a = single.process(&mut original.clone(), NOW_NS + i as u64);
            let b = sharded.process(&mut original.clone(), NOW_NS + i as u64);
            prop_assert_eq!(a, b, "copy {} diverged", i);
            if i == 0 {
                prop_assert!(a.is_flyover(), "original must pass: {:?}", a);
            } else {
                prop_assert!(a.is_drop(), "replay {} must drop: {:?}", i, a);
            }
        }
        prop_assert_eq!(single.stats(), sharded.stats());
    }
}

/// EPIC engine + `Steering::BySource` helpers for the source-keyed
/// sharding properties below.
fn make_epic(dup: bool) -> Box<dyn Datapath + Send> {
    let cfg = RouterConfig { duplicate_suppression: dup, ..RouterConfig::default() };
    Box::new(EpicDatapath::new([0xB5; 16], hop_key(), cfg))
}

fn make_sharded_epic(shards: usize, dup: bool) -> ShardedRouter {
    ShardedRouter::new((0..shards).map(|_| make_epic(dup)).collect(), SLOTS, Steering::BySource)
}

/// An EPIC-stamped duplicate-free workload from up to five source ASes
/// (the axis `Steering::BySource` shards on): per spec `(src_choice,
/// payload, corrupt)`, a packet on source `src_choice % 5` (or plain
/// SCION when the choice hashes to 5), each at a distinct millisecond.
fn epic_workload(specs: &[(u8, u16, bool)]) -> Vec<Vec<u8>> {
    let hops = vec![BeaconHop { key: hop_key(), cons_ingress: 0, cons_egress: 0 }];
    let path = forge_path(&hops, NOW_S as u32 - 100, 0x1234);
    let mut issuer = EpicDatapath::new([0xB5; 16], hop_key(), RouterConfig::default());
    let mut senders: Vec<EpicSender> = (0..5u64)
        .map(|i| {
            let src = IsdAs::new(1, 0x10 + i);
            let key = issuer.auth_key(src, [0, 0, 0, 1], NOW_S);
            let mut sender = EpicSender::new(src, IsdAs::new(2, 0x20), path.clone());
            sender.attach_auth_key(0, 0, 0, key, NOW_S).unwrap();
            sender
        })
        .collect();
    let mut plain = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
    specs
        .iter()
        .enumerate()
        .map(|(i, &(src_choice, payload, corrupt))| {
            let payload = vec![0u8; usize::from(payload)];
            let at = NOW_MS + i as u64; // unique ms → duplicate-free
            let choice = usize::from(src_choice) % 6;
            let mut bytes = if choice == 5 {
                plain.generate(&payload, at).unwrap()
            } else {
                senders[choice].generate(&payload, at).unwrap()
            };
            if corrupt {
                let idx = 56 + (i % 12);
                bytes[idx] ^= 0x40;
            }
            bytes
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded ≡ single for the source-keyed EPIC engine under
    /// `Steering::BySource`: verdicts, aggregate stats and key-cache
    /// counters match for any shard count on duplicate-free mixed
    /// traffic, through both the per-packet and the batch path — every
    /// source's key cache and replay state lives on exactly one shard.
    #[test]
    fn epic_sharded_by_source_equals_single(
        shards in 1usize..6,
        specs in prop::collection::vec((any::<u8>(), 0u16..400, any::<bool>()), 1..24),
        dup in any::<bool>(),
    ) {
        let packets = epic_workload(&specs);
        let mut single = make_epic(dup);
        let mut sharded = make_sharded_epic(shards, dup);
        for pkt in &packets {
            let a = single.process(&mut pkt.clone(), NOW_NS);
            let b = sharded.process(&mut pkt.clone(), NOW_NS);
            prop_assert_eq!(a, b, "sharded EPIC verdict diverged");
        }
        prop_assert_eq!(single.stats(), sharded.stats(), "aggregate stats diverged");

        // The same equivalence through the batch path (which regroups
        // the burst into per-shard runs and drives the three-sweep
        // batched key derivation per run).
        let mut single_b = make_epic(dup);
        let mut sharded_b = make_sharded_epic(shards, dup);
        let mut bufs_a: Vec<PacketBuf> = packets.iter().cloned().map(PacketBuf::new).collect();
        let mut bufs_b: Vec<PacketBuf> = packets.into_iter().map(PacketBuf::new).collect();
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        single_b.process_batch(&mut bufs_a, NOW_NS, &mut out_a);
        sharded_b.process_batch(&mut bufs_b, NOW_NS, &mut out_b);
        prop_assert_eq!(&out_a, &out_b, "batch verdicts diverged");
        prop_assert_eq!(single_b.stats(), sharded_b.stats(), "batch stats diverged");
    }

    /// EPIC replays co-locate under source steering: exact copies steer
    /// to the owning shard and its window filter drops them exactly as a
    /// single engine would.
    #[test]
    fn epic_replays_colocate_with_their_original(
        shards in 2usize..6,
        src_choice in 0u8..5,
        copies in 1usize..5,
    ) {
        let original = epic_workload(&[(src_choice, 300, false)]).remove(0);
        let mut single = make_epic(true);
        let mut sharded = make_sharded_epic(shards, true);
        for i in 0..=copies {
            let a = single.process(&mut original.clone(), NOW_NS + i as u64);
            let b = sharded.process(&mut original.clone(), NOW_NS + i as u64);
            prop_assert_eq!(a, b, "copy {} diverged", i);
            if i == 0 {
                prop_assert!(a.egress().is_some(), "original must validate: {:?}", a);
            } else {
                prop_assert!(a.is_drop(), "replay {} must drop: {:?}", i, a);
            }
        }
        prop_assert_eq!(single.stats(), sharded.stats());
    }
}

/// The threaded runtime conserves packets: every dispatched packet is
/// processed exactly once, in both modes, and the per-shard stats add up.
#[test]
fn threaded_runtime_conserves_packets() {
    let templates: Vec<Vec<u8>> =
        RES_IDS.iter().map(|&r| generator(r, 700).generate(&[0u8; 400], NOW_MS).unwrap()).collect();
    for mode in [RuntimeMode::PerCoreClone, RuntimeMode::Sharded] {
        for shards in [1usize, 2, 4] {
            let mut cfg = RuntimeConfig::new(shards);
            cfg.ring_capacity = 16;
            let total = 2_000u64;
            let report =
                run_to_completion(&cfg, mode, |_| make_engine(false), &templates, total, NOW_NS);
            assert_eq!(report.packets, total, "{mode:?}/{shards}");
            let processed: u64 = report.per_shard.iter().map(|r| r.processed).sum();
            assert_eq!(processed, total, "{mode:?}/{shards}");
            for shard in &report.per_shard {
                assert_eq!(
                    shard.stats.flyover + shard.stats.best_effort + shard.stats.dropped,
                    shard.stats.processed,
                    "{mode:?}/{shards}: shard stats must balance"
                );
            }
            // Valid reserved traffic: nothing drops in either mode.
            let dropped: u64 = report.per_shard.iter().map(|r| r.dropped).sum();
            assert_eq!(dropped, 0, "{mode:?}/{shards}");
        }
    }
}

/// Plain-packet steering hashes exactly the duplicate-filter identity
/// `(src AS, BaseTS, MillisTS, Counter)`: two packets sharing that
/// identity but differing in source *host* (which the dup filter
/// ignores) must co-locate, so the owning shard's filter drops the
/// second exactly like a single engine.
#[test]
fn dup_identity_colliding_plain_packets_colocate() {
    let hops = vec![BeaconHop { key: hop_key(), cons_ingress: 0, cons_egress: 0 }];
    let path = forge_path(&hops, NOW_S as u32 - 100, 0x1234);
    let mut plain = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
    let original = plain.generate(&[0u8; 200], NOW_MS).unwrap();
    // Same dup identity, different src host (unauthenticated on plain
    // SCION packets, byte 20 of the address header).
    let mut sibling = original.clone();
    sibling[12 + 20] ^= 0x7F;
    assert_ne!(original, sibling);

    let map = ShardMap::new(5, SLOTS, Steering::ByReservation);
    assert_eq!(
        map.shard_of(&original),
        map.shard_of(&sibling),
        "dup-identity packets must steer together"
    );

    for shards in [2usize, 3, 5] {
        let mut single = make_engine(true);
        let mut sharded = make_sharded(shards, true);
        for pkt in [&original, &sibling] {
            let a = single.process(&mut pkt.clone(), NOW_NS);
            let b = sharded.process(&mut pkt.clone(), NOW_NS);
            assert_eq!(a, b, "{shards} shards");
        }
        assert_eq!(single.stats(), sharded.stats(), "{shards} shards");
        assert_eq!(sharded.stats().dropped, 1, "sibling must drop as a duplicate");
    }
}

/// Adversarial flow-hash collisions: packets crafted so their *plain*
/// hash would collide on one shard still steer by ResID when they carry
/// a reservation — the reservation axis always wins, so no collision can
/// move policer state.
#[test]
fn reservation_steering_overrides_hash_collisions() {
    let map = ShardMap::new(4, SLOTS, Steering::ByReservation);
    // Same source, same timestamps (identical plain-hash material),
    // different ResIDs: must steer by ResID range, not by the hash.
    let a = generator(1, 700).generate(&[0u8; 100], NOW_MS).unwrap();
    let b = generator(99_999, 700).generate(&[0u8; 100], NOW_MS).unwrap();
    assert_eq!(map.shard_of(&a), map.shard_of_res_id(1));
    assert_eq!(map.shard_of(&b), map.shard_of_res_id(99_999));
    assert_ne!(map.shard_of(&a), map.shard_of(&b), "range ends live on different shards");
    // And a verdict-level double check through the facade.
    let mut sharded = make_sharded(4, false);
    assert!(sharded.process(&mut a.clone(), NOW_NS).is_flyover());
    assert!(sharded.process(&mut b.clone(), NOW_NS).is_flyover());
    let active = sharded.shard_stats().iter().filter(|s| s.processed > 0).count();
    assert_eq!(active, 2, "two reservations at opposite range ends → two shards");
}

/// The threaded tx path conserves packets: with the egress model on,
/// every dispatched packet crosses its shard's egress ring exactly once
/// (the dispatcher asserts the per-shard sequence numbers — a leaked,
/// duplicated or reordered packet panics the run), is serialized by the
/// two-class scheduler, and the per-class totals balance against the
/// verdicts.
#[test]
fn threaded_tx_path_conserves_and_orders_packets() {
    use hummingbird::dataplane::EgressConfig;
    // Class-1000 reservations: policing never demotes, so every packet
    // is deterministically priority class.
    let templates: Vec<Vec<u8>> = RES_IDS
        .iter()
        .map(|&r| generator(r, 1000).generate(&[0u8; 400], NOW_MS).unwrap())
        .collect();
    for shards in [1usize, 2, 4] {
        let mut cfg = RuntimeConfig::new(shards);
        cfg.ring_capacity = 16;
        cfg.egress = Some(EgressConfig::default());
        let total = 2_000u64;
        let report = run_to_completion(
            &cfg,
            RuntimeMode::Sharded,
            |_| make_engine(false),
            &templates,
            total,
            NOW_NS,
        );
        assert_eq!(report.packets, total, "{shards} shards");
        let e = report.egress.expect("tx path enabled");
        assert_eq!(e.forwarded() + e.dropped, total, "{shards} shards: tx conserves");
        assert_eq!(e.priority.pkts, total, "{shards} shards: valid reserved → all priority");
        assert_eq!(e.best_effort.pkts, 0, "{shards} shards");
        assert_eq!(e.dropped, 0, "{shards} shards");
        // Residence accrues monotonically ordered wire departures.
        assert!(e.priority.residence_ns_max >= e.priority.residence_ns_sum / total);
        // Worker-side tallies agree with the scheduler's view.
        let forwarded: u64 = report.per_shard.iter().map(|r| r.forwarded).sum();
        assert_eq!(forwarded, e.forwarded(), "{shards} shards");
    }
}

/// Determinism, simulated side: the same seed and topology produce
/// bit-identical `FlowStats` (latency sums included) and engine
/// counters across two runs — for every engine family, single and
/// 4-shard. The event loop has no hidden entropy.
#[test]
fn same_seed_same_topology_is_bit_identical() {
    use hummingbird::netsim::{run_latency_scenario, EngineFamily, EngineScenario, LatencySpec};
    let cfg = RouterConfig::default();
    const START_NS: u64 = 1_700_000_000 * 1_000_000_000;
    for family in EngineFamily::ALL {
        for shards in [1usize, 4] {
            let scenario = EngineScenario { family, shards };
            let spec = LatencySpec::new(scenario).with_flood(30_000);
            let a = run_latency_scenario(cfg, &spec, START_NS);
            let b = run_latency_scenario(cfg, &spec, START_NS);
            let label = format!("{}x{shards}", family.name());
            assert_eq!(a.victim, b.victim, "{label}: victim FlowStats diverged");
            assert_eq!(a.flood, b.flood, "{label}: flood FlowStats diverged");
            assert_eq!(a.entry_stats, b.entry_stats, "{label}: engine counters diverged");
        }
    }
}

/// Determinism under churn: the full fault timeline — link failures,
/// stranding, the reroute pass, an on-path cold reboot — replays
/// bit-identically for the same seed, for every family, single and
/// 4-shard. The churn layer adds no hidden entropy on top of the event
/// loop's `(time, seq)` ordering.
#[test]
fn same_seed_churned_run_is_bit_identical() {
    use hummingbird::netsim::{run_churn_scenario, ChurnSpec, EngineFamily, EngineScenario};
    let cfg = RouterConfig::default();
    const START_NS: u64 = 1_700_000_000 * 1_000_000_000;
    for family in EngineFamily::ALL {
        for shards in [1usize, 4] {
            let mut spec = ChurnSpec::new(EngineScenario { family, shards }).with_flood(8_000);
            // A small backbone keeps the root suite quick; the full
            // 104-router acceptance sweep lives in the netsim crate.
            spec.pops = 6;
            spec.routers_per_pop = 2;
            spec.background_flows = 16;
            spec.run_s = 2;
            let a = run_churn_scenario(cfg, &spec, START_NS);
            let b = run_churn_scenario(cfg, &spec, START_NS);
            let label = format!("{}x{shards}", family.name());
            assert!(a.report.link_failures() >= 3, "{label}: {:?}", a.report);
            assert_eq!(a, b, "{label}: churned runs with one seed must be bit-identical");
        }
    }
}

/// Determinism, threaded side: two runs over the same single-flow
/// workload produce identical per-shard packet/verdict counts, engine
/// stats and egress class totals (wall-clock fields aside). A single
/// flow steers to one shard, so even the per-shard split is fully
/// determined; multi-flow mixes are covered by the conservation checks
/// above, whose totals are order-free.
#[test]
fn threaded_tx_path_is_deterministic_for_a_pinned_flow() {
    use hummingbird::dataplane::EgressConfig;
    let templates = vec![generator(50_000, 1000).generate(&[0u8; 400], NOW_MS).unwrap()];
    let run = || {
        let mut cfg = RuntimeConfig::new(3);
        cfg.ring_capacity = 16;
        cfg.egress = Some(EgressConfig::default());
        run_to_completion(
            &cfg,
            RuntimeMode::Sharded,
            |_| make_engine(false),
            &templates,
            1_500,
            NOW_NS,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.bits, b.bits);
    for (sa, sb) in a.per_shard.iter().zip(b.per_shard.iter()) {
        assert_eq!(sa.processed, sb.processed, "per-shard split must be deterministic");
        assert_eq!(sa.forwarded, sb.forwarded);
        assert_eq!(sa.dropped, sb.dropped);
        assert_eq!(sa.stats, sb.stats, "engine counters must be deterministic");
    }
    let (ea, eb) = (a.egress.unwrap(), b.egress.unwrap());
    assert_eq!(ea.priority.pkts, eb.priority.pkts);
    assert_eq!(ea.priority.bytes, eb.priority.bytes);
    assert_eq!(ea.best_effort.pkts, eb.best_effort.pkts);
    assert_eq!(ea.dropped, eb.dropped);
}

/// All three wait strategies, for every test below.
const WAITS: [WaitStrategy; 3] =
    [WaitStrategy::BusyPoll, WaitStrategy::YieldAfter(4), WaitStrategy::Backoff];

/// Order-free aggregate verdict counts of a run (key-cache hits are
/// excluded: they depend on per-engine interleaving, which legitimately
/// differs between rx layouts).
fn verdict_totals(report: &hummingbird::dataplane::RuntimeReport) -> [u64; 5] {
    let f = |get: fn(&hummingbird::dataplane::ShardReport) -> u64| {
        report.per_shard.iter().map(get).sum()
    };
    [
        f(|s| s.stats.flyover),
        f(|s| s.stats.best_effort),
        f(|s| s.stats.dropped),
        f(|s| s.stats.demoted_overuse),
        f(|s| s.stats.demoted_untimely),
    ]
}

/// Multi-queue ≡ dispatcher ≡ single: both rx layouts conserve packets
/// at every shard count, and their aggregate verdict counts match each
/// other and the single-shard run — the per-shard rx queues are a pure
/// transport change, invisible to what the router decides.
#[test]
fn multi_queue_matches_dispatcher_and_single_shard() {
    let templates: Vec<Vec<u8>> =
        RES_IDS.iter().map(|&r| generator(r, 700).generate(&[0u8; 400], NOW_MS).unwrap()).collect();
    let total = 2_000u64;
    let mut baseline: Option<[u64; 5]> = None;
    for rx in [RxMode::MultiQueue, RxMode::SingleDispatcher] {
        for shards in [1usize, 2, 4] {
            let mut cfg = RuntimeConfig::new(shards);
            cfg.ring_capacity = 16;
            cfg.rx_mode = rx;
            let report = run_to_completion(
                &cfg,
                RuntimeMode::Sharded,
                |_| make_engine(false),
                &templates,
                total,
                NOW_NS,
            );
            let label = format!("{rx:?}/{shards}");
            assert_eq!(report.packets, total, "{label}");
            let processed: u64 = report.per_shard.iter().map(|r| r.processed).sum();
            assert_eq!(processed, total, "{label}: conservation");
            let totals = verdict_totals(&report);
            match &baseline {
                None => baseline = Some(totals),
                Some(b) => assert_eq!(&totals, b, "{label}: verdicts diverged from baseline"),
            }
        }
    }
}

/// Runtime determinism: for every shard count × wait strategy, two runs
/// produce bit-identical per-shard reports, and the reports are also
/// identical *across* wait strategies — how a worker waits must never
/// change what it computes.
#[test]
fn multi_queue_is_bit_identical_across_wait_strategies() {
    let templates: Vec<Vec<u8>> =
        RES_IDS.iter().map(|&r| generator(r, 700).generate(&[0u8; 400], NOW_MS).unwrap()).collect();
    let total = 1_500u64;
    for shards in [1usize, 2, 4] {
        let run = |wait: WaitStrategy| {
            let mut cfg = RuntimeConfig::new(shards);
            cfg.ring_capacity = 16;
            cfg.wait = wait;
            run_to_completion(
                &cfg,
                RuntimeMode::Sharded,
                |_| make_engine(false),
                &templates,
                total,
                NOW_NS,
            )
        };
        let reference = run(WAITS[0]);
        for wait in WAITS {
            let (a, b) = (run(wait), run(wait));
            for (x, y) in [(&a, &b), (&a, &reference)] {
                assert_eq!(x.packets, y.packets, "{shards}/{wait:?}");
                assert_eq!(x.bits, y.bits, "{shards}/{wait:?}");
                for (i, (sx, sy)) in x.per_shard.iter().zip(y.per_shard.iter()).enumerate() {
                    assert_eq!(sx.processed, sy.processed, "{shards}/{wait:?}: shard {i}");
                    assert_eq!(sx.forwarded, sy.forwarded, "{shards}/{wait:?}: shard {i}");
                    assert_eq!(sx.dropped, sy.dropped, "{shards}/{wait:?}: shard {i}");
                    assert_eq!(sx.stats, sy.stats, "{shards}/{wait:?}: shard {i}");
                }
            }
        }
    }
}

/// The worker-drained tx path conserves packets under every wait
/// strategy: each worker serializes its own egress through its shard's
/// TxScheduler (no dispatcher round-trip), the per-shard sequence
/// numbers prove nothing leaked or reordered, and the merged class
/// totals balance.
#[test]
fn multi_queue_tx_path_conserves_under_every_wait_strategy() {
    use hummingbird::dataplane::EgressConfig;
    let templates: Vec<Vec<u8>> = RES_IDS
        .iter()
        .map(|&r| generator(r, 1000).generate(&[0u8; 400], NOW_MS).unwrap())
        .collect();
    let total = 1_500u64;
    for shards in [1usize, 2, 4] {
        for wait in WAITS {
            let mut cfg = RuntimeConfig::new(shards);
            cfg.ring_capacity = 16;
            cfg.wait = wait;
            cfg.egress = Some(EgressConfig::default());
            let report = run_to_completion(
                &cfg,
                RuntimeMode::Sharded,
                |_| make_engine(false),
                &templates,
                total,
                NOW_NS,
            );
            let label = format!("{shards}/{wait:?}");
            assert_eq!(report.packets, total, "{label}");
            let e = report.egress.expect("tx path enabled");
            assert_eq!(e.forwarded() + e.dropped, total, "{label}: tx conserves");
            assert_eq!(e.priority.pkts, total, "{label}: valid reserved → all priority");
            assert_eq!(e.dropped, 0, "{label}");
            let forwarded: u64 = report.per_shard.iter().map(|r| r.forwarded).sum();
            assert_eq!(forwarded, e.forwarded(), "{label}: worker tallies agree");
        }
    }
}
