//! Fuzz-style property tests: the border router must never panic, no
//! matter what bytes arrive — malformed, truncated, bit-flipped, or
//! adversarially crafted. A router that panics on a crafted packet is a
//! remote-DoS vector far worse than anything in the paper's threat model.

use hummingbird::dataplane::{
    forge_path, BeaconHop, BorderRouter, RouterConfig, SourceGenerator, SourceReservation,
};
use hummingbird::{Datapath, IsdAs, ResInfo, SecretValue};
use hummingbird_wire::scion_mac::HopMacKey;
use proptest::prelude::*;

const NOW_MS: u64 = 1_700_000_100_000;
const NOW_NS: u64 = NOW_MS * 1_000_000;

fn make_router() -> BorderRouter {
    BorderRouter::new(
        SecretValue::new([0x60; 16]),
        HopMacKey::new([0x10; 16]),
        RouterConfig::default(),
    )
}

fn valid_packet(n_hops: usize, payload: usize) -> Vec<u8> {
    let hop_keys: Vec<HopMacKey> =
        (0..n_hops).map(|i| HopMacKey::new([0x10 + i as u8; 16])).collect();
    let svs: Vec<SecretValue> =
        (0..n_hops).map(|i| SecretValue::new([0x60 + i as u8; 16])).collect();
    let hops: Vec<BeaconHop> = (0..n_hops)
        .map(|i| BeaconHop {
            key: hop_keys[i].clone(),
            cons_ingress: if i == 0 { 0 } else { 2 * i as u16 },
            cons_egress: if i == n_hops - 1 { 0 } else { 2 * i as u16 + 1 },
        })
        .collect();
    let path = forge_path(&hops, (NOW_MS / 1000) as u32 - 100, 0x1234);
    let mut generator = SourceGenerator::new(IsdAs::new(1, 0x10), IsdAs::new(2, 0x20), path);
    for (i, sv) in svs.iter().enumerate() {
        let (ingress, egress) = (
            if i == 0 { 0 } else { 2 * i as u16 },
            if i == n_hops - 1 { 0 } else { 2 * i as u16 + 1 },
        );
        let res_info = ResInfo {
            ingress,
            egress,
            res_id: i as u32,
            bw_encoded: 400,
            res_start: (NOW_MS / 1000) as u32 - 50,
            duration: 600,
        };
        let key = sv.derive_key(&res_info);
        generator.attach_reservation(i, SourceReservation { res_info, key }).unwrap();
    }
    generator.generate(&vec![0u8; payload], NOW_MS).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Completely random bytes never panic the router.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut router = make_router();
        let mut pkt = bytes;
        let _ = router.process(&mut pkt, NOW_NS);
    }

    /// A valid packet with any single byte corrupted never panics, and a
    /// corrupted *header* never yields priority forwarding unless the
    /// corruption is outside the authenticated region.
    #[test]
    fn bitflipped_packets_never_panic(
        n_hops in 1usize..6,
        payload in 0usize..600,
        idx: usize,
        bit in 0u8..8,
    ) {
        let mut pkt = valid_packet(n_hops, payload);
        let i = idx % pkt.len();
        pkt[i] ^= 1 << bit;
        let mut router = make_router();
        let _ = router.process(&mut pkt, NOW_NS);
    }

    /// Truncations never panic.
    #[test]
    fn truncations_never_panic(n_hops in 1usize..6, cut: usize) {
        let pkt = valid_packet(n_hops, 200);
        let keep = cut % (pkt.len() + 1);
        let mut truncated = pkt[..keep].to_vec();
        let mut router = make_router();
        let _ = router.process(&mut truncated, NOW_NS);
    }

    /// Flipping any bit in the flyover hop field of a valid packet makes
    /// the first router drop it or demote it — never forward it as a
    /// *different* valid reservation (the MAC covers every field).
    #[test]
    fn flyover_field_corruption_never_passes(idx in 1usize..20, bit in 0u8..8) {
        let mut pkt = valid_packet(1, 100);
        // The single flyover hop field starts right after common (12) +
        // addr (24) + meta (12) + info (8) = byte 56. Byte 0 is skipped:
        // its router-alert bits are deliberately unauthenticated, exactly
        // as in standard SCION.
        let off = 56 + idx;
        pkt[off] ^= 1 << bit;
        let mut router = make_router();
        let verdict = router.process(&mut pkt, NOW_NS);
        prop_assert!(
            !verdict.is_flyover(),
            "corrupted flyover byte {idx} bit {bit} still forwarded with priority"
        );
    }

    /// Random arrival times never panic (clock skew, far past/future).
    #[test]
    fn arbitrary_clocks_never_panic(now_ns: u64, n_hops in 1usize..4) {
        let mut pkt = valid_packet(n_hops, 64);
        let mut router = make_router();
        let _ = router.process(&mut pkt, now_ns);
    }
}
